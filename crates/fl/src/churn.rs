//! Seeded, deterministic fleet dynamics: device arrival/departure,
//! availability schedules, mid-round dropout, and time-varying link
//! bandwidth.
//!
//! Real cross-device fleets are not a fixed `Vec<Device>`: devices come
//! online, go away, disappear mid-round, and see their links degrade.
//! [`ChurnSpec`] describes those dynamics declaratively and
//! [`ChurnProcess`] evaluates them — and the whole model is a **pure
//! function of `(spec, device, round)`**. There is no mutable churn state
//! anywhere:
//!
//! * the availability timeline is identical however the fleet is chunked
//!   or sharded (the registry's shard size can never leak into which
//!   devices exist);
//! * whether a round was ever *queried* cannot shift any other round's
//!   answer, so checkpoint/resume needs no churn cursor at all — a
//!   resumed run re-derives the exact timeline from the spec;
//! * evaluating one device costs one SplitMix64 hash for the static
//!   schedule (arrival round, lifetime, duty phase) plus two per-round
//!   hashes for the dropout/link draws, which are only taken for sampled
//!   devices — per-round cost is O(registered) *time* for the
//!   availability scan (the same order as participation sampling itself)
//!   and O(1) *memory*, so a million-device fleet with churn keeps peak
//!   residency O(sampled).
//!
//! The per-device static schedule packs three independent draws into one
//! 64-bit hash (21 + 21 + 22 bits); at those resolutions the arrival and
//! lifetime quantiles are exact to ~5·10⁻⁷, far below anything a
//! round-granularity process can observe.

use fedzkt_tensor::split_seed;

/// Stream tags separating the churn model's independent random draws
/// from each other (and from every other consumer of the run seed).
const STREAM_STATIC: u64 = 0xC4_12A1;
const STREAM_DROPOUT: u64 = 0xC4_12A2;
const STREAM_FRACTION: u64 = 0xC4_12A3;
const STREAM_LINK: u64 = 0xC4_12A4;

/// Declarative description of a fleet's dynamics, attached to a scenario.
///
/// The default value is the static fleet every pre-churn scenario
/// implies: everyone present from round 0, nobody departs, no duty
/// cycling, no dropout, steady links.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnSpec {
    /// Seed of the churn process, independent of the run seed so a seed
    /// sweep can hold the fleet dynamics fixed (or vice versa).
    pub seed: u64,
    /// Devices come online at a round drawn uniformly from
    /// `0..arrival_window`; `0` means the whole fleet is present from
    /// round 0.
    pub arrival_window: usize,
    /// Mean lifetime in rounds after arrival (exponentially distributed,
    /// minimum 1); `0` means devices never depart.
    pub mean_lifetime: f32,
    /// Duty-cycle period in rounds; `0` disables duty cycling.
    pub duty_period: usize,
    /// Rounds per period the device is on (each device gets its own
    /// phase). Meaningful only when `duty_period > 0`.
    pub duty_on: usize,
    /// Probability that an available, sampled device drops mid-round
    /// (receiving the round payload and burning partial compute, but
    /// contributing no update).
    pub dropout: f32,
    /// Per-round link-bandwidth multiplier is drawn uniformly from
    /// `[bandwidth_floor, 1]`; `1` leaves links steady.
    pub bandwidth_floor: f32,
}

impl Default for ChurnSpec {
    fn default() -> Self {
        ChurnSpec {
            seed: 0,
            arrival_window: 0,
            mean_lifetime: 0.0,
            duty_period: 0,
            duty_on: 0,
            dropout: 0.0,
            bandwidth_floor: 1.0,
        }
    }
}

impl ChurnSpec {
    /// Check the spec for degenerate values.
    ///
    /// # Errors
    /// Returns a description of the offending field when the dropout
    /// probability is outside `[0, 1)`, the bandwidth floor is outside
    /// `(0, 1]`, the mean lifetime is negative or non-finite, or a duty
    /// cycle has `duty_on` outside `1..=duty_period`.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..1.0).contains(&self.dropout) {
            return Err(format!("dropout probability {} outside [0, 1)", self.dropout));
        }
        if !(self.bandwidth_floor > 0.0 && self.bandwidth_floor <= 1.0) {
            return Err(format!("bandwidth floor {} outside (0, 1]", self.bandwidth_floor));
        }
        if !(self.mean_lifetime.is_finite() && self.mean_lifetime >= 0.0) {
            return Err(format!("mean lifetime {} must be finite and >= 0", self.mean_lifetime));
        }
        if self.duty_period > 0 && !(1..=self.duty_period).contains(&self.duty_on) {
            return Err(format!(
                "duty cycle {}/{} leaves no on-rounds (need 1 <= on <= period)",
                self.duty_on, self.duty_period
            ));
        }
        Ok(())
    }

    /// Does this spec describe any dynamics at all? A quiescent spec is
    /// behaviourally identical to no churn (every device always
    /// available, no dropout, steady links).
    pub fn is_quiescent(&self) -> bool {
        self.arrival_window == 0
            && self.mean_lifetime == 0.0
            && self.duty_period == 0
            && self.dropout == 0.0
            && self.bandwidth_floor >= 1.0
    }
}

/// A device's static availability schedule: derived once per query from a
/// single per-device hash, never stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Schedule {
    /// First round the device is online.
    arrival: usize,
    /// First round after `arrival` the device is gone (`usize::MAX` =
    /// never departs).
    departure: usize,
    /// Duty-cycle phase offset.
    phase: usize,
}

/// Evaluator of a [`ChurnSpec`] over a fleet of `devices` devices.
///
/// Every method is a pure function of `(spec, device, round)` — see the
/// module docs for why that is the load-bearing property.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnProcess {
    spec: ChurnSpec,
    devices: usize,
    /// `split_seed(spec.seed, STREAM_STATIC)`, precomputed so the hot
    /// availability scan costs one SplitMix64 evaluation per device.
    static_seed: u64,
}

/// Map `bits`-wide integer entropy onto `[0, 1)`.
fn unit(h: u64, bits: u32) -> f64 {
    (h & ((1u64 << bits) - 1)) as f64 / (1u64 << bits) as f64
}

impl ChurnProcess {
    /// Build the evaluator for a fleet of `devices` devices.
    ///
    /// # Panics
    /// Panics when `devices` is 0 or the spec fails
    /// [`ChurnSpec::validate`].
    pub fn new(spec: ChurnSpec, devices: usize) -> Self {
        assert!(devices > 0, "a churn process needs at least one device");
        if let Err(e) = spec.validate() {
            panic!("invalid churn spec: {e}");
        }
        ChurnProcess { spec, devices, static_seed: split_seed(spec.seed, STREAM_STATIC) }
    }

    /// The spec this process evaluates.
    pub fn spec(&self) -> &ChurnSpec {
        &self.spec
    }

    /// Number of devices in the fleet.
    pub fn devices(&self) -> usize {
        self.devices
    }

    /// Device `k`'s static schedule, from one hash of `(seed, k)`.
    fn schedule(&self, k: usize) -> Schedule {
        let h = split_seed(self.static_seed, k as u64);
        let arrival = if self.spec.arrival_window == 0 {
            0
        } else {
            // Uniform over 0..window from 21 bits of entropy.
            ((unit(h, 21) * self.spec.arrival_window as f64) as usize)
                .min(self.spec.arrival_window - 1)
        };
        let departure = if self.spec.mean_lifetime == 0.0 {
            usize::MAX
        } else {
            // Exponential lifetime with the configured mean, at least one
            // round so an arriving device is observable.
            let u = unit(h >> 21, 21);
            let life = (-(self.spec.mean_lifetime as f64) * (1.0 - u).ln()).round() as usize;
            arrival.saturating_add(life.max(1))
        };
        let phase =
            if self.spec.duty_period == 0 { 0 } else { (h >> 42) as usize % self.spec.duty_period };
        Schedule { arrival, departure, phase }
    }

    /// Is device `k` available (online and on-duty) in `round`?
    ///
    /// # Panics
    /// Panics when `k` is out of range.
    pub fn is_available(&self, k: usize, round: usize) -> bool {
        assert!(k < self.devices, "device {k} out of range (fleet: {})", self.devices);
        let s = self.schedule(k);
        if round < s.arrival || round >= s.departure {
            return false;
        }
        self.spec.duty_period == 0 || (round + s.phase) % self.spec.duty_period < self.spec.duty_on
    }

    /// The sorted set of devices available in `round`.
    pub fn available(&self, round: usize) -> Vec<usize> {
        (0..self.devices).filter(|&k| self.is_available(k, round)).collect()
    }

    /// [`ChurnProcess::available`] evaluated a chunk at a time — the walk
    /// a sharded registry performs. Exposed so the property suite can
    /// assert chunk-size invariance: for every chunk size the
    /// concatenation equals the monolithic scan.
    pub fn available_chunked(&self, round: usize, chunk: usize) -> Vec<usize> {
        assert!(chunk > 0, "chunk size must be positive");
        let mut out = Vec::new();
        let mut lo = 0;
        while lo < self.devices {
            let hi = (lo + chunk).min(self.devices);
            out.extend((lo..hi).filter(|&k| self.is_available(k, round)));
            lo = hi;
        }
        out
    }

    /// Mid-round dropout decision for an available, sampled device:
    /// `Some(fraction)` when device `k` drops out of `round` after
    /// completing `fraction ∈ [0, 1)` of its local compute, `None` when
    /// it survives the round.
    ///
    /// # Panics
    /// Panics when `k` is out of range.
    pub fn dropout(&self, k: usize, round: usize) -> Option<f64> {
        assert!(k < self.devices, "device {k} out of range (fleet: {})", self.devices);
        if self.spec.dropout == 0.0 {
            return None;
        }
        let h = split_seed(split_seed(split_seed(self.spec.seed, STREAM_DROPOUT), round as u64), k as u64);
        if unit(h, 53) >= self.spec.dropout as f64 {
            return None;
        }
        let f = split_seed(split_seed(split_seed(self.spec.seed, STREAM_FRACTION), round as u64), k as u64);
        Some(unit(f, 53))
    }

    /// Link-bandwidth multiplier for device `k` in `round`, uniform in
    /// `[bandwidth_floor, 1]` (exactly `1.0` for a steady-link spec).
    ///
    /// # Panics
    /// Panics when `k` is out of range.
    pub fn link_scale(&self, k: usize, round: usize) -> f64 {
        assert!(k < self.devices, "device {k} out of range (fleet: {})", self.devices);
        let floor = self.spec.bandwidth_floor as f64;
        if floor >= 1.0 {
            return 1.0;
        }
        let h = split_seed(split_seed(split_seed(self.spec.seed, STREAM_LINK), round as u64), k as u64);
        floor + unit(h, 53) * (1.0 - floor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn busy_spec() -> ChurnSpec {
        ChurnSpec {
            seed: 7,
            arrival_window: 4,
            mean_lifetime: 6.0,
            duty_period: 3,
            duty_on: 2,
            dropout: 0.3,
            bandwidth_floor: 0.4,
        }
    }

    #[test]
    fn quiescent_spec_means_everyone_always_available() {
        let p = ChurnProcess::new(ChurnSpec::default(), 10);
        for round in 0..50 {
            assert_eq!(p.available(round), (0..10).collect::<Vec<_>>());
            for k in 0..10 {
                assert_eq!(p.dropout(k, round), None);
                assert_eq!(p.link_scale(k, round), 1.0);
            }
        }
        assert!(ChurnSpec::default().is_quiescent());
        assert!(!busy_spec().is_quiescent());
    }

    #[test]
    fn evaluation_is_deterministic_and_pure() {
        let a = ChurnProcess::new(busy_spec(), 64);
        let b = ChurnProcess::new(busy_spec(), 64);
        // Query b in scrambled round order first: history must not matter.
        for round in [9, 0, 3, 9, 1].into_iter().chain(0..10) {
            let _ = b.available(round);
        }
        for round in 0..10 {
            assert_eq!(a.available(round), b.available(round));
            for k in 0..64 {
                assert_eq!(a.dropout(k, round), b.dropout(k, round));
                assert_eq!(a.link_scale(k, round).to_bits(), b.link_scale(k, round).to_bits());
            }
        }
    }

    #[test]
    fn arrivals_spread_over_the_window_then_departures_thin_the_fleet() {
        let spec = ChurnSpec { seed: 3, arrival_window: 4, mean_lifetime: 8.0, ..Default::default() };
        let p = ChurnProcess::new(spec, 500);
        let counts: Vec<usize> = (0..40).map(|r| p.available(r).len()).collect();
        // Monotone ramp while arrivals dominate…
        assert!(counts[0] > 0, "some devices arrive at round 0");
        assert!(counts[3] > counts[0], "the crowd builds over the window");
        // …then the exponential lifetimes drain it.
        assert!(counts[39] < counts[4] / 4, "mass departure: {counts:?}");
    }

    #[test]
    fn duty_cycle_keeps_roughly_on_over_period_online() {
        let spec = ChurnSpec { seed: 5, duty_period: 4, duty_on: 1, ..Default::default() };
        let p = ChurnProcess::new(spec, 400);
        let avg: f64 =
            (0..16).map(|r| p.available(r).len() as f64).sum::<f64>() / 16.0 / 400.0;
        assert!((avg - 0.25).abs() < 0.05, "duty 1/4 should keep ~25% online, got {avg}");
        // Each device individually honours its cycle.
        for k in 0..20 {
            let on: usize = (0..16).filter(|&r| p.is_available(k, r)).count();
            assert_eq!(on, 4, "device {k} must be on exactly 1 round in 4");
        }
    }

    #[test]
    fn dropout_rate_and_fractions_are_sane() {
        let spec = ChurnSpec { seed: 11, dropout: 0.3, ..Default::default() };
        let p = ChurnProcess::new(spec, 1000);
        let drops: Vec<f64> = (0..1000).filter_map(|k| p.dropout(k, 0)).collect();
        let rate = drops.len() as f64 / 1000.0;
        assert!((rate - 0.3).abs() < 0.05, "dropout rate {rate}");
        assert!(drops.iter().all(|&f| (0.0..1.0).contains(&f)));
    }

    #[test]
    fn link_scale_stays_in_the_configured_band() {
        let spec = ChurnSpec { seed: 13, bandwidth_floor: 0.4, ..Default::default() };
        let p = ChurnProcess::new(spec, 100);
        for round in 0..5 {
            for k in 0..100 {
                let s = p.link_scale(k, round);
                assert!((0.4..=1.0).contains(&s), "scale {s}");
            }
        }
    }

    #[test]
    fn chunked_scan_matches_monolithic_scan() {
        let p = ChurnProcess::new(busy_spec(), 257);
        for chunk in [1, 2, 7, 64, 256, 300] {
            for round in 0..6 {
                assert_eq!(p.available_chunked(round, chunk), p.available(round));
            }
        }
    }

    #[test]
    fn degenerate_specs_are_rejected() {
        for (field, spec) in [
            ("dropout", ChurnSpec { dropout: 1.0, ..Default::default() }),
            ("dropout", ChurnSpec { dropout: -0.1, ..Default::default() }),
            ("dropout", ChurnSpec { dropout: f32::NAN, ..Default::default() }),
            ("floor", ChurnSpec { bandwidth_floor: 0.0, ..Default::default() }),
            ("floor", ChurnSpec { bandwidth_floor: 1.5, ..Default::default() }),
            ("lifetime", ChurnSpec { mean_lifetime: -1.0, ..Default::default() }),
            ("lifetime", ChurnSpec { mean_lifetime: f32::INFINITY, ..Default::default() }),
            ("duty", ChurnSpec { duty_period: 3, duty_on: 0, ..Default::default() }),
            ("duty", ChurnSpec { duty_period: 3, duty_on: 4, ..Default::default() }),
        ] {
            assert!(spec.validate().is_err(), "{field} spec {spec:?} should be rejected");
        }
        busy_spec().validate().unwrap();
    }
}
