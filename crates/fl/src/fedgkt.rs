//! FedGKT (He et al., 2020) — group knowledge transfer over split models
//! with per-sample feature/logit wire payloads.
//!
//! FedGKT splits the network: each device trains a small **feature
//! extractor** plus a throwaway local classifier head on its private
//! shard, then uplinks a bundle of *per-sample* quantities — the extracted
//! features, its local logits and the ground-truth labels — instead of any
//! model state. The server trains the (larger) **classifier head** on the
//! pooled features, supervised by the true labels and distilled toward the
//! device logits, and downlinks its own **soft labels** per sample; the
//! device digests them at the start of its *next* round — the paper's
//! alternating knowledge-transfer loop, phase-shifted by one round so both
//! phases fit the driver's local→server order.
//!
//! This is the protocol that stresses the workspace's payload abstraction
//! hardest: neither wire direction carries a model, and the two directions
//! carry *differently shaped* bundles. The uplink template is a
//! three-tensor bundle `{features [n,d], logits [n,C], labels [n]}`, the
//! downlink template a single `[n,C]` soft-label tensor
//! ([`FederatedAlgorithm::downlink_template`]) — both flow through the
//! session [`PayloadCodec`](crate::PayloadCodec) like any state dict, and
//! under a lossy codec the *decoded* features train the server head and
//! the *decoded* soft labels teach the device.
//!
//! Device models here are composites (extractor + head) that the
//! single-spec fleet dispatcher cannot rebuild, so local training runs
//! serially on the driver thread; every step is a pure function of
//! `(seed, round, k)`, which keeps runs bit-identical across thread
//! counts, materialization modes and kill/resume boundaries.

use crate::checkpoint::AlgoState;
use crate::registry::{DeviceRegistry, Materialization};
use crate::{digest_logits, train_local, DigestConfig, FederatedAlgorithm, LocalTrainConfig,
    RoundContext, SimConfig};
use fedzkt_autograd::loss::cross_entropy;
use fedzkt_autograd::{no_grad, Var};
use fedzkt_data::{BatchIter, Dataset};
use fedzkt_models::ModelSpec;
use fedzkt_nn::{
    load_state_dict, state_dict, Activation, Linear, Module, Optimizer, Sequential, Sgd,
    SgdConfig, StateDict,
};
use fedzkt_tensor::{seeded_rng, split_seed, Tensor};

/// Hyperparameters of [`FedGkt`]'s update rules. Protocol-level knobs
/// (rounds, participation, seed, threads, codec) live in [`SimConfig`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FedGktConfig {
    /// Local cross-entropy epochs per round (extractor + local head).
    pub local_epochs: usize,
    /// Epochs a device spends digesting the server's soft labels at the
    /// start of the round after receiving them.
    pub kd_epochs: usize,
    /// Server-head training epochs per device bundle per round.
    pub server_epochs: usize,
    /// Mini-batch size on both sides.
    pub batch_size: usize,
    /// Device learning rate.
    pub lr: f32,
    /// Server-head learning rate.
    pub server_lr: f32,
    /// Width of the exchanged feature vectors — the extractor's output
    /// dimension and the server head's input dimension.
    pub feature_dim: usize,
    /// Hidden width of the server's two-layer classifier head.
    pub server_hidden: usize,
}

impl Default for FedGktConfig {
    fn default() -> Self {
        FedGktConfig {
            local_epochs: 1,
            kd_epochs: 1,
            server_epochs: 2,
            batch_size: 32,
            lr: 0.01,
            server_lr: 0.01,
            feature_dim: 32,
            server_hidden: 64,
        }
    }
}

/// A device's split network: its zoo architecture repurposed as a feature
/// extractor (built with `feature_dim` outputs instead of class logits)
/// and a throwaway local linear head that lets it train end-to-end — and
/// lets the driver evaluate it as an image classifier.
struct SplitModel {
    extractor: Box<dyn Module>,
    head: Linear,
}

impl Module for SplitModel {
    fn forward(&self, x: &Var) -> Var {
        self.head.forward(&self.extractor.forward(x))
    }

    fn params(&self) -> Vec<Var> {
        let mut params = self.extractor.params();
        params.extend(self.head.params());
        params
    }

    fn buffers(&self) -> Vec<fedzkt_nn::Buffer> {
        let mut buffers = self.extractor.buffers();
        buffers.extend(self.head.buffers());
        buffers
    }

    fn set_training(&self, training: bool) {
        self.extractor.set_training(training);
        self.head.set_training(training);
    }
}

/// One simulated device: its extractor architecture, and the split model
/// itself while the device is materialized.
struct GktSlot {
    spec: ModelSpec,
    model: Option<SplitModel>,
}

/// Private shards, stored per the fleet's materialization mode.
enum GktData {
    Eager(Vec<Dataset>),
    Lazy { train: Dataset, index: Vec<Vec<usize>> },
}

impl GktData {
    fn shard_len(&self, k: usize) -> usize {
        match self {
            GktData::Eager(shards) => shards[k].len(),
            GktData::Lazy { index, .. } => index[k].len(),
        }
    }
}

/// A FedGKT federation: heterogeneous split devices and one shared server
/// classifier head.
pub struct FedGkt {
    cfg: FedGktConfig,
    seed: u64,
    io: (usize, usize, usize),
    mode: Materialization,
    slots: Vec<GktSlot>,
    data: GktData,
    registry: DeviceRegistry,
    /// The server's classifier head over the exchanged feature space:
    /// `Linear(d, hidden) → ReLU → Linear(hidden, classes)`.
    head: Sequential,
    /// Per-device soft labels downlinked last round, digested next round
    /// (`None` until the device's first exchange) — the cross-round state
    /// of the alternating transfer.
    soft: Vec<Option<Tensor>>,
    /// Which devices digested soft labels this round (compute accounting).
    digested_this_round: Vec<bool>,
    /// The round's decoded uplink bundles, produced by `local_update` and
    /// consumed by `server_update` — intra-round scratch.
    pending: Vec<(usize, StateDict)>,
}

impl FedGkt {
    /// Build the federation over `zoo` extractor architectures and the
    /// private `shards` of `train`. `sim` supplies the run seed and the
    /// fleet's [`Materialization`] mode.
    ///
    /// # Panics
    /// Panics when `zoo`/`shards` lengths differ or are empty.
    pub fn new(
        zoo: &[ModelSpec],
        train: &Dataset,
        shards: &[Vec<usize>],
        cfg: FedGktConfig,
        sim: &SimConfig,
    ) -> Self {
        assert!(!zoo.is_empty(), "need at least one device");
        assert_eq!(zoo.len(), shards.len(), "zoo/shards length mismatch");
        let io = (train.channels(), train.num_classes(), train.img_size());
        let build = |spec: &ModelSpec, k: usize, seed: u64| -> SplitModel {
            Self::build_split(spec, io, cfg.feature_dim, seed, k)
        };
        let (slots, data, registry) = match sim.materialization {
            Materialization::Eager => (
                zoo.iter()
                    .enumerate()
                    .map(|(k, spec)| GktSlot {
                        spec: *spec,
                        model: Some(build(spec, k, sim.seed)),
                    })
                    .collect::<Vec<_>>(),
                GktData::Eager(shards.iter().map(|idx| train.subset(idx)).collect()),
                DeviceRegistry::eager(zoo.len()),
            ),
            Materialization::Lazy => (
                zoo.iter().map(|spec| GktSlot { spec: *spec, model: None }).collect(),
                GktData::Lazy { train: train.clone(), index: shards.to_vec() },
                DeviceRegistry::new(zoo.len()),
            ),
        };
        let (_, classes, _) = io;
        let mut rng = seeded_rng(split_seed(sim.seed, 0x6C7_5EED));
        let head = Sequential::new(vec![
            Box::new(Linear::new(cfg.feature_dim, cfg.server_hidden, true, &mut rng)),
            Box::new(Activation::Relu),
            Box::new(Linear::new(cfg.server_hidden, classes, true, &mut rng)),
        ]);
        FedGkt {
            cfg,
            seed: sim.seed,
            io,
            mode: sim.materialization,
            soft: vec![None; zoo.len()],
            digested_this_round: vec![false; zoo.len()],
            slots,
            data,
            registry,
            head,
            pending: Vec::new(),
        }
    }

    /// The deterministic split-model build for device `k`: the zoo spec
    /// with `feature_dim` outputs as the extractor, plus a fresh linear
    /// head.
    fn build_split(
        spec: &ModelSpec,
        io: (usize, usize, usize),
        feature_dim: usize,
        seed: u64,
        k: usize,
    ) -> SplitModel {
        let (channels, classes, img) = io;
        let extractor =
            spec.build(channels, feature_dim, img, split_seed(seed, 0x6C7_0000 + k as u64));
        let mut rng = seeded_rng(split_seed(seed, 0x6C7_1000 + k as u64));
        let head = Linear::new(feature_dim, classes, true, &mut rng);
        SplitModel { extractor, head }
    }

    /// The server's classifier head.
    pub fn server_head(&self) -> &dyn Module {
        &self.head
    }

    /// Device `k`'s materialized split model.
    ///
    /// # Panics
    /// Panics when the device is not resident — a lifecycle bug, since
    /// every code path that touches a model materializes it first.
    fn model(&self, k: usize) -> &SplitModel {
        self.slots[k].model.as_ref().expect("device model must be resident here")
    }

    /// Materialize device `k` if it is not already resident.
    fn ensure_resident(&mut self, k: usize) {
        if self.slots[k].model.is_some() {
            return;
        }
        let model =
            Self::build_split(&self.slots[k].spec, self.io, self.cfg.feature_dim, self.seed, k);
        if let Some(summary) = self.registry.take_summary(k) {
            load_state_dict(&model, &summary)
                .expect("registry summary matches split architecture");
        }
        self.slots[k].model = Some(model);
        self.registry.checkout(k);
    }

    /// Stage the private shards of `ids` for this round (empty in eager
    /// mode, where the shards are held permanently).
    fn stage_shards(&self, ids: &[usize]) -> Vec<Dataset> {
        match &self.data {
            GktData::Eager(_) => Vec::new(),
            GktData::Lazy { train, index } => {
                ids.iter().map(|&k| train.subset(&index[k])).collect()
            }
        }
    }

    /// The `i`-th staged shard of `ids`.
    fn shard<'a>(&'a self, staged: &'a [Dataset], ids: &[usize], i: usize) -> &'a Dataset {
        match &self.data {
            GktData::Eager(shards) => &shards[ids[i]],
            GktData::Lazy { .. } => &staged[i],
        }
    }

    /// Device `k`'s uplink bundle over its shard: extracted features,
    /// local logits and ground-truth labels, one row per private sample.
    /// An empty shard yields the zero-row bundle without touching the
    /// model (forwarding an empty batch is undefined).
    fn bundle(&self, k: usize, shard: &Dataset) -> StateDict {
        let (_, classes, _) = self.io;
        let d = self.cfg.feature_dim;
        let n = shard.len();
        if n == 0 {
            return StateDict {
                params: vec![
                    Tensor::zeros(&[0, d]),
                    Tensor::zeros(&[0, classes]),
                    Tensor::zeros(&[0]),
                ],
                buffers: vec![],
            };
        }
        let model = self.model(k);
        model.set_training(false);
        let x = Var::constant(shard.images().clone());
        let (features, logits) = no_grad(|| {
            let f = model.extractor.forward(&x);
            let l = model.head.forward(&f);
            (f.value_clone(), l.value_clone())
        });
        model.set_training(true);
        let labels = Tensor::from_vec(
            shard.labels().iter().map(|&l| l as f32).collect(),
            &[n],
        )
        .expect("label tensor");
        StateDict { params: vec![features, logits, labels], buffers: vec![] }
    }

    /// Train the server head on one decoded device bundle: cross-entropy
    /// against the shipped labels plus an ℓ1 pull toward the device's own
    /// logits (the paper's bidirectional distillation, server side).
    fn train_head(&mut self, features: &Tensor, logits: &Tensor, labels: &[usize], seed: u64) {
        let n = features.shape()[0];
        if n == 0 || self.cfg.server_epochs == 0 {
            return;
        }
        self.head.set_training(true);
        let opt = Sgd::new(
            self.head.params(),
            SgdConfig { lr: self.cfg.server_lr, momentum: 0.9, weight_decay: 0.0 },
        );
        for epoch in 0..self.cfg.server_epochs {
            for batch in BatchIter::new(n, self.cfg.batch_size, seed.wrapping_add(epoch as u64)) {
                let x = Var::constant(features.gather_first(&batch).expect("feature batch"));
                let target = logits.gather_first(&batch).expect("logit batch");
                let y: Vec<usize> = batch.iter().map(|&i| labels[i]).collect();
                let pred = self.head.forward(&x);
                // Raw-logit ℓ1 gradients dwarf cross-entropy's; keep the
                // distillation term a fraction of the supervised one.
                let kd = pred
                    .sub(&Var::constant(target))
                    .abs()
                    .sum_all()
                    .scale(0.1 / (batch.len() as f32));
                let loss = cross_entropy(&pred, &y).add(&kd);
                opt.zero_grad();
                loss.backward();
                opt.step();
            }
        }
    }
}

impl FederatedAlgorithm for FedGkt {
    fn devices(&self) -> usize {
        self.slots.len()
    }

    /// Device phase: digest last round's soft labels (if any), train the
    /// split model on the private shard, then uplink the per-sample
    /// feature/logit/label bundle.
    fn local_update(&mut self, round: usize, active: &[usize], ctx: &mut RoundContext) -> f32 {
        for &k in active {
            self.ensure_resident(k);
        }
        let staged = self.stage_shards(active);
        let mut digested = vec![false; self.slots.len()];
        let mut pending = Vec::with_capacity(active.len());
        let mut loss_sum = 0.0f32;
        for (i, &k) in active.iter().enumerate() {
            let shard = self.shard(&staged, active, i);
            if let Some(soft) = &self.soft[k] {
                digest_logits(
                    self.model(k),
                    &DigestConfig {
                        inputs: shard.images(),
                        targets: soft,
                        epochs: self.cfg.kd_epochs,
                        batch_size: self.cfg.batch_size,
                        // The workspace digest idiom: a fraction of the
                        // base rate (raw-logit ℓ1 gradients are large).
                        lr: self.cfg.lr * 0.2,
                        seed: split_seed(self.seed, 0x6C7_3000 + (round * 31 + k) as u64),
                    },
                );
                digested[k] = !shard.is_empty() && self.cfg.kd_epochs > 0;
            }
            loss_sum += train_local(
                self.model(k),
                shard,
                &LocalTrainConfig {
                    epochs: self.cfg.local_epochs,
                    batch_size: self.cfg.batch_size,
                    lr: self.cfg.lr,
                    momentum: 0.9,
                    seed: split_seed(self.seed, 0x6C7_2000 + (round * 31 + k) as u64),
                    ..Default::default()
                },
            );
            let bundle = self.bundle(k, shard);
            let (decoded, wire) = ctx.through_wire(&bundle);
            ctx.comm.record_upload(k, wire);
            pending.push((k, decoded));
        }
        self.digested_this_round = digested;
        self.pending = pending;
        loss_sum / active.len().max(1) as f32
    }

    /// Server phase: per uploaded bundle, train the classifier head on the
    /// decoded features (cross-entropy + distillation toward the device
    /// logits), then downlink the head's soft labels for the device to
    /// digest next round.
    fn server_update(&mut self, round: usize, active: &[usize], ctx: &mut RoundContext) {
        debug_assert_eq!(self.pending.len(), active.len());
        let uploads = std::mem::take(&mut self.pending);
        let (_, classes, _) = self.io;
        for (k, bundle) in uploads {
            let [features, logits, labels_f32] = <[Tensor; 3]>::try_from(bundle.params)
                .expect("fedgkt uplink is a three-tensor bundle");
            // Labels ride the same (possibly lossy) wire as everything
            // else: decode by rounding back onto the class lattice.
            let labels: Vec<usize> = labels_f32
                .data()
                .iter()
                .map(|&v| (v.round().max(0.0) as usize).min(classes - 1))
                .collect();
            self.train_head(
                &features,
                &logits,
                &labels,
                split_seed(self.seed, 0x6C7_4000 + (round * 31 + k) as u64),
            );
            let soft = if features.shape()[0] == 0 {
                Tensor::zeros(&[0, classes])
            } else {
                self.head.set_training(false);
                let x = Var::constant(features);
                let soft = no_grad(|| self.head.forward(&x).value_clone());
                self.head.set_training(true);
                soft
            };
            let reply = StateDict { params: vec![soft], buffers: vec![] };
            let (mut decoded, wire) = ctx.through_wire(&reply);
            ctx.comm.record_download(k, wire);
            self.soft[k] = Some(decoded.params.pop().expect("soft-label tensor"));
        }
    }

    fn device_model(&self, k: usize) -> &dyn Module {
        self.model(k)
    }

    /// The uplink claim: O(n_k) per-sample rows — features `[n,d]`,
    /// logits `[n,C]` and labels `[n]` — never model state.
    fn payload_template(&self, k: usize) -> StateDict {
        let (_, classes, _) = self.io;
        let n = self.data.shard_len(k);
        StateDict {
            params: vec![
                Tensor::zeros(&[n, self.cfg.feature_dim]),
                Tensor::zeros(&[n, classes]),
                Tensor::zeros(&[n]),
            ],
            buffers: vec![],
        }
    }

    /// The downlink carries only the server's soft labels: one `[n,C]`
    /// tensor — the asymmetry that motivates the split template API.
    fn downlink_template(&self, k: usize) -> StateDict {
        let (_, classes, _) = self.io;
        StateDict {
            params: vec![Tensor::zeros(&[self.data.shard_len(k), classes])],
            buffers: vec![],
        }
    }

    fn local_samples(&self, k: usize) -> usize {
        let shard = self.data.shard_len(k);
        let kd = if self.digested_this_round[k] { self.cfg.kd_epochs * shard } else { 0 };
        self.cfg.local_epochs * shard + kd
    }

    fn construction_seed(&self) -> Option<u64> {
        Some(self.seed)
    }

    fn registry(&self) -> Option<&DeviceRegistry> {
        Some(&self.registry)
    }

    fn prepare_eval(&mut self) {
        for k in 0..self.slots.len() {
            self.ensure_resident(k);
        }
    }

    fn end_round(&mut self, _round: usize) {
        if self.mode.is_lazy() {
            for k in 0..self.slots.len() {
                if let Some(model) = self.slots[k].model.take() {
                    self.registry.store_summary(k, state_dict(&model));
                    self.registry.release(k);
                }
            }
        }
    }

    /// What FedGKT carries across rounds: every split model (resident or
    /// summarized), the server head, each device's pending soft labels
    /// (the phase-shifted half of the alternating transfer), and the
    /// registry's monotone counters.
    fn save_state(&self) -> AlgoState {
        let mut state = AlgoState::new();
        for (k, slot) in self.slots.iter().enumerate() {
            if let Some(model) = &slot.model {
                state.put_dict(format!("device_{k}"), &state_dict(model));
            }
        }
        for (k, summary) in self.registry.summaries() {
            state.put_dict(format!("device_{k}"), summary);
        }
        state.put_dict("server_head", &state_dict(&self.head));
        for (k, soft) in self.soft.iter().enumerate() {
            if let Some(t) = soft {
                state.put_dict(
                    format!("soft_{k}"),
                    &StateDict { params: vec![t.clone()], buffers: vec![] },
                );
            }
        }
        state.put_words(
            "registry",
            vec![self.registry.peak_resident() as u64, self.registry.touched() as u64],
        );
        state
    }

    fn load_state(&mut self, state: &AlgoState) -> Result<(), String> {
        for k in 0..self.slots.len() {
            let name = format!("device_{k}");
            if state.has_blob(&name) {
                let sd = state.dict(&name)?;
                match self.mode {
                    Materialization::Eager => load_state_dict(self.model(k), &sd)
                        .map_err(|e| format!("device {k}: {e}"))?,
                    Materialization::Lazy => self.registry.store_summary(k, sd),
                }
            }
            let soft_name = format!("soft_{k}");
            self.soft[k] = if state.has_blob(&soft_name) {
                let mut sd = state.dict(&soft_name)?;
                if sd.params.len() != 1 {
                    return Err(format!("soft_{k} must hold exactly one tensor"));
                }
                Some(sd.params.pop().expect("checked above"))
            } else {
                None
            };
        }
        let head = state.dict("server_head")?;
        load_state_dict(&self.head, &head).map_err(|e| format!("server head: {e}"))?;
        let reg = state.words("registry")?;
        if reg.len() != 2 {
            return Err("registry counters must be [peak_resident, touched]".into());
        }
        self.registry.absorb_counters(reg[0] as usize, reg[1] as usize);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CodecSpec, PayloadCodec, SimCheckpoint, Simulation};
    use fedzkt_data::{DataFamily, Partition, SynthConfig};

    fn setup(sim: SimConfig) -> Simulation<FedGkt> {
        let (train, test) = SynthConfig {
            family: DataFamily::Cifar10Like,
            img: 8,
            train_n: 96,
            test_n: 48,
            classes: 4,
            seed: 3,
            ..Default::default()
        }
        .generate();
        let shards = Partition::Iid.split(train.labels(), 4, 3, 5).unwrap();
        let zoo = vec![
            ModelSpec::Mlp { hidden: 16 },
            ModelSpec::SmallCnn { base_channels: 2 },
            ModelSpec::LeNet { scale: 0.5, deep: false },
        ];
        let fed = FedGkt::new(
            &zoo,
            &train,
            &shards,
            FedGktConfig {
                local_epochs: 2,
                kd_epochs: 2,
                server_epochs: 1,
                batch_size: 16,
                lr: 0.05,
                server_lr: 0.02,
                feature_dim: 8,
                server_hidden: 16,
            },
            &sim,
        );
        Simulation::builder(fed, test, sim).build()
    }

    fn default_sim() -> SimConfig {
        SimConfig { rounds: 2, seed: 1, ..Default::default() }
    }

    #[test]
    fn fedgkt_learns_above_chance() {
        let mut sim = setup(default_sim());
        let log = sim.run();
        assert_eq!(log.rounds.len(), 2);
        assert!(log.final_accuracy() > 0.3, "accuracy {}", log.final_accuracy());
    }

    #[test]
    fn uplink_is_per_sample_and_downlink_is_soft_labels_only() {
        let mut sim = setup(default_sim());
        let metrics = sim.round(0);
        // 32-sample IID shards of 96, feature_dim 8, 4 classes:
        // uplink = {[32,8], [32,4], [32]} and downlink = {[32,4]} per
        // device, under the self-describing raw wire format (10-byte
        // payload header, then 1 + 4·ndim shape record + 4 bytes a value
        // per tensor).
        let up = CodecSpec::Raw.wire_bytes(&sim.algorithm().payload_template(0)) as u64;
        let down = CodecSpec::Raw.wire_bytes(&sim.algorithm().downlink_template(0)) as u64;
        assert_eq!(up, 10 + (9 + 32 * 8 * 4) + (9 + 32 * 4 * 4) + (5 + 32 * 4));
        assert_eq!(down, 10 + (9 + 32 * 4 * 4));
        assert_eq!(metrics.upload_bytes, 3 * up);
        assert_eq!(metrics.download_bytes, 3 * down);
        assert!(up > down, "the bundle asymmetry is the point of the protocol");
    }

    #[test]
    fn soft_labels_arrive_after_round_one_and_digest_next_round() {
        let mut sim = setup(default_sim());
        assert!((0..3).all(|k| sim.algorithm().soft[k].is_none()));
        sim.round(0);
        assert!((0..3).all(|k| sim.algorithm().soft[k].is_some()));
        // Round 0 had nothing to digest; round 1 digests on every device.
        assert!((0..3).all(|k| !sim.algorithm().digested_this_round[k]));
        let s0 = sim.algorithm().local_samples(0);
        sim.round(1);
        assert!((0..3).all(|k| sim.algorithm().digested_this_round[k]));
        assert_eq!(sim.algorithm().local_samples(0), 2 * s0, "kd_epochs == local_epochs here");
    }

    #[test]
    fn lossy_codec_error_flows_into_training() {
        // Same seed, Raw vs Q8: the server head trains on decoded
        // features, and the device digests decoded soft labels — both
        // must diverge from the lossless run.
        let run = |codec: CodecSpec| {
            let mut sim = setup(SimConfig { codec, ..default_sim() });
            sim.round(0);
            sim.round(1);
            (
                state_dict(sim.algorithm().server_head()),
                state_dict(sim.algorithm().device_model(0)),
            )
        };
        let raw = run(CodecSpec::Raw);
        let q8 = run(CodecSpec::QuantQ8);
        assert_ne!(raw.0, q8.0, "server head saw decoded features");
        assert_ne!(raw.1, q8.1, "device digested decoded soft labels");
    }

    #[test]
    fn every_codec_round_trips_the_bundle() {
        for codec in
            [CodecSpec::Raw, CodecSpec::QuantQ8, CodecSpec::QuantQ4, CodecSpec::TopK { density: 0.25 }]
        {
            let mut sim = setup(SimConfig { codec, ..default_sim() });
            let log = sim.run();
            assert!(log.final_accuracy().is_finite(), "{codec:?}");
            assert!(log.rounds[1].upload_bytes > 0 && log.rounds[1].download_bytes > 0);
        }
    }

    #[test]
    fn straggler_state_is_bit_unchanged() {
        // participation 0.34 of 3 devices → exactly 1 active per round.
        let mut sim = setup(SimConfig {
            rounds: 1,
            participation: 0.34,
            seed: 1,
            ..Default::default()
        });
        let before: Vec<StateDict> =
            (0..3).map(|k| state_dict(sim.algorithm().device_model(k))).collect();
        let metrics = sim.round(0);
        assert_eq!(metrics.active_devices.len(), 1);
        for (k, snapshot) in before.iter().enumerate() {
            let same = state_dict(sim.algorithm().device_model(k)) == *snapshot;
            assert_eq!(same, !metrics.active_devices.contains(&k), "device {k}");
            assert_eq!(sim.algorithm().soft[k].is_some(), metrics.active_devices.contains(&k));
        }
    }

    #[test]
    fn lazy_run_is_bit_identical_to_eager() {
        let run = |mode: Materialization| {
            let mut sim = setup(SimConfig {
                rounds: 2,
                participation: 0.67,
                seed: 1,
                materialization: mode,
                ..Default::default()
            });
            sim.run().to_json()
        };
        let mut eager = run(Materialization::Eager);
        let mut lazy = run(Materialization::Lazy);
        for log in [&mut eager, &mut lazy] {
            *log = log
                .split("\"peak_resident_devices\":")
                .map(|part| match part.find('}') {
                    Some(i) => &part[i..],
                    None => part,
                })
                .collect();
        }
        assert_eq!(eager, lazy, "lazy FedGKT diverged from eager");
    }

    #[test]
    fn checkpoint_resume_matches_the_uninterrupted_run_bit_for_bit() {
        for mode in [Materialization::Eager, Materialization::Lazy] {
            // Partial participation so a pending soft-label tensor has to
            // survive the checkpoint boundary.
            let sim_cfg = SimConfig {
                rounds: 2,
                participation: 0.67,
                seed: 1,
                materialization: mode,
                ..Default::default()
            };
            let reference = setup(sim_cfg).run().clone();
            let mut first = setup(sim_cfg);
            first.round(0);
            let ck = SimCheckpoint::from_json(&first.checkpoint().to_json()).unwrap();
            drop(first);
            let mut resumed = setup(sim_cfg);
            resumed.resume_from(&ck).expect("resume");
            let log = resumed.run().clone();
            assert_eq!(log.to_json(), reference.to_json(), "mode {mode:?}");
        }
    }

    #[test]
    fn lazy_fleet_stays_at_the_active_count_without_eval() {
        let mut sim = setup(SimConfig {
            rounds: 2,
            participation: 0.67,
            seed: 1,
            eval_every: 0,
            materialization: Materialization::Lazy,
            ..Default::default()
        });
        sim.round(0);
        let reg = sim.algorithm().registry().expect("fedgkt exposes its registry");
        assert_eq!(reg.resident(), 0);
        assert_eq!(reg.peak_resident(), 2, "eval off → peak stays at the active count");
    }
}
