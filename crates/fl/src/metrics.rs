//! Per-round metrics and run logs.

use serde::{Deserialize, Serialize};

/// Metrics recorded after one communication round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundMetrics {
    /// 1-based communication round.
    pub round: usize,
    /// Mean test accuracy over on-device models (the paper's "average
    /// accuracy").
    pub avg_device_accuracy: f32,
    /// Per-device test accuracies.
    pub device_accuracy: Vec<f32>,
    /// Global/server model test accuracy, when the algorithm has one.
    pub global_accuracy: Option<f32>,
    /// Mean last-epoch local training loss over active devices.
    pub train_loss: f32,
    /// Device→server traffic this round (bytes).
    pub upload_bytes: u64,
    /// Server→device traffic this round (bytes).
    pub download_bytes: u64,
    /// Simulated round duration (seconds), when a clock is attached.
    pub sim_seconds: f64,
    /// Devices that participated.
    pub active_devices: Vec<usize>,
}

impl RoundMetrics {
    /// An empty record for `round`.
    pub fn new(round: usize) -> Self {
        RoundMetrics {
            round,
            avg_device_accuracy: 0.0,
            device_accuracy: Vec::new(),
            global_accuracy: None,
            train_loss: 0.0,
            upload_bytes: 0,
            download_bytes: 0,
            sim_seconds: 0.0,
            active_devices: Vec::new(),
        }
    }
}

/// The full trace of a federated run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunLog {
    /// One record per round, in order.
    pub rounds: Vec<RoundMetrics>,
}

impl RunLog {
    /// An empty log.
    pub fn new() -> Self {
        RunLog::default()
    }

    /// Append a round record.
    pub fn push(&mut self, metrics: RoundMetrics) {
        self.rounds.push(metrics);
    }

    /// Final average device accuracy (0 when empty).
    pub fn final_accuracy(&self) -> f32 {
        self.rounds.last().map(|r| r.avg_device_accuracy).unwrap_or(0.0)
    }

    /// Final global-model accuracy, when available.
    pub fn final_global_accuracy(&self) -> Option<f32> {
        self.rounds.last().and_then(|r| r.global_accuracy)
    }

    /// Best average device accuracy across rounds.
    pub fn best_accuracy(&self) -> f32 {
        self.rounds.iter().map(|r| r.avg_device_accuracy).fold(0.0, f32::max)
    }

    /// The accuracy series (for learning-curve figures).
    pub fn accuracy_series(&self) -> Vec<f32> {
        self.rounds.iter().map(|r| r.avg_device_accuracy).collect()
    }

    /// Render as CSV (header + one row per round).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "round,avg_device_accuracy,global_accuracy,train_loss,upload_bytes,download_bytes,sim_seconds,active_devices\n",
        );
        for r in &self.rounds {
            out.push_str(&format!(
                "{},{:.4},{},{:.4},{},{},{:.2},{}\n",
                r.round,
                r.avg_device_accuracy,
                r.global_accuracy.map(|g| format!("{g:.4}")).unwrap_or_default(),
                r.train_loss,
                r.upload_bytes,
                r.download_bytes,
                r.sim_seconds,
                r.active_devices.len(),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(round: usize, acc: f32) -> RoundMetrics {
        RoundMetrics { avg_device_accuracy: acc, ..RoundMetrics::new(round) }
    }

    #[test]
    fn final_and_best_accuracy() {
        let mut log = RunLog::new();
        log.push(record(1, 0.5));
        log.push(record(2, 0.8));
        log.push(record(3, 0.7));
        assert_eq!(log.final_accuracy(), 0.7);
        assert_eq!(log.best_accuracy(), 0.8);
        assert_eq!(log.accuracy_series(), vec![0.5, 0.8, 0.7]);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut log = RunLog::new();
        log.push(record(1, 0.25));
        let csv = log.to_csv();
        assert!(csv.starts_with("round,"));
        assert_eq!(csv.lines().count(), 2);
        assert!(csv.lines().nth(1).unwrap().starts_with("1,0.2500"));
    }

    #[test]
    fn empty_log_defaults() {
        let log = RunLog::new();
        assert_eq!(log.final_accuracy(), 0.0);
        assert_eq!(log.final_global_accuracy(), None);
    }
}
