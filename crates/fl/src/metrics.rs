//! Per-round metrics and run logs.

use crate::json;
use serde::{Deserialize, Serialize};

/// Metrics recorded after one communication round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundMetrics {
    /// 1-based communication round.
    pub round: usize,
    /// Mean test accuracy over on-device models (the paper's "average
    /// accuracy").
    pub avg_device_accuracy: f32,
    /// Per-device test accuracies.
    pub device_accuracy: Vec<f32>,
    /// Global/server model test accuracy, when the algorithm has one.
    pub global_accuracy: Option<f32>,
    /// Mean last-epoch local training loss over active devices.
    pub train_loss: f32,
    /// Device→server traffic this round (bytes).
    pub upload_bytes: u64,
    /// Server→device traffic this round (bytes).
    pub download_bytes: u64,
    /// Simulated round duration (seconds), when a clock is attached.
    pub sim_seconds: f64,
    /// Devices that participated.
    pub active_devices: Vec<usize>,
    /// Registered fleet size (the registry population; identical between
    /// lazy and eager runs of one scenario).
    pub registered_devices: usize,
    /// High-water mark of simultaneously materialized devices, from the
    /// algorithm's [`DeviceRegistry`](crate::DeviceRegistry) counters (the
    /// fleet size when no registry is attached). Deliberately
    /// mode-dependent: this column is *the* observable difference between
    /// a lazy and an eager run of the same scenario.
    pub peak_resident_devices: usize,
    /// Devices available this round under the scenario's churn model
    /// (arrived, not departed, on-duty); the whole registered fleet when
    /// no churn model is attached.
    pub available_devices: usize,
    /// Sampled devices that dropped out mid-round: they were charged
    /// their download and partial compute time but contributed no update
    /// (and do not appear in `active_devices`).
    pub dropped_devices: usize,
}

impl RoundMetrics {
    /// An empty record for `round`.
    pub fn new(round: usize) -> Self {
        RoundMetrics {
            round,
            avg_device_accuracy: 0.0,
            device_accuracy: Vec::new(),
            global_accuracy: None,
            train_loss: 0.0,
            upload_bytes: 0,
            download_bytes: 0,
            sim_seconds: 0.0,
            active_devices: Vec::new(),
            registered_devices: 0,
            peak_resident_devices: 0,
            available_devices: 0,
            dropped_devices: 0,
        }
    }
}

/// The full trace of a federated run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunLog {
    /// One record per round, in order.
    pub rounds: Vec<RoundMetrics>,
}

impl RunLog {
    /// An empty log.
    pub fn new() -> Self {
        RunLog::default()
    }

    /// Append a round record.
    pub fn push(&mut self, metrics: RoundMetrics) {
        self.rounds.push(metrics);
    }

    /// Final average device accuracy (0 when empty).
    pub fn final_accuracy(&self) -> f32 {
        self.rounds.last().map(|r| r.avg_device_accuracy).unwrap_or(0.0)
    }

    /// Final global-model accuracy, when available.
    pub fn final_global_accuracy(&self) -> Option<f32> {
        self.rounds.last().and_then(|r| r.global_accuracy)
    }

    /// Best average device accuracy across rounds.
    pub fn best_accuracy(&self) -> f32 {
        self.rounds.iter().map(|r| r.avg_device_accuracy).fold(0.0, f32::max)
    }

    /// The accuracy series (for learning-curve figures).
    pub fn accuracy_series(&self) -> Vec<f32> {
        self.rounds.iter().map(|r| r.avg_device_accuracy).collect()
    }

    /// Render as JSON (`{"rounds": [...]}`), one object per round with every
    /// [`RoundMetrics`] field. Finite floats are printed with Rust's
    /// shortest round-trip formatting, so [`RunLog::from_json`] recovers
    /// the log bit-for-bit. Non-finite values (a diverged run's NaN loss)
    /// have no JSON literal; they are emitted as `null` — still valid
    /// JSON — and parse back as NaN.
    pub fn to_json(&self) -> String {
        fn f32j(v: f32) -> String {
            if v.is_finite() { format!("{v}") } else { "null".into() }
        }
        fn f64j(v: f64) -> String {
            if v.is_finite() { format!("{v}") } else { "null".into() }
        }
        let mut out = String::from("{\"rounds\":[");
        for (i, r) in self.rounds.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let device_accuracy: Vec<String> =
                r.device_accuracy.iter().copied().map(f32j).collect();
            let active: Vec<String> = r.active_devices.iter().map(|d| d.to_string()).collect();
            out.push_str(&format!(
                "{{\"round\":{},\"avg_device_accuracy\":{},\"device_accuracy\":[{}],\
                 \"global_accuracy\":{},\"train_loss\":{},\"upload_bytes\":{},\
                 \"download_bytes\":{},\"sim_seconds\":{},\"active_devices\":[{}],\
                 \"registered_devices\":{},\"peak_resident_devices\":{},\
                 \"available_devices\":{},\"dropped_devices\":{}}}",
                r.round,
                f32j(r.avg_device_accuracy),
                device_accuracy.join(","),
                r.global_accuracy.map(f32j).unwrap_or_else(|| "null".into()),
                f32j(r.train_loss),
                r.upload_bytes,
                r.download_bytes,
                f64j(r.sim_seconds),
                active.join(","),
                r.registered_devices,
                r.peak_resident_devices,
                r.available_devices,
                r.dropped_devices,
            ));
        }
        out.push_str("]}");
        out
    }

    /// Parse a log emitted by [`RunLog::to_json`].
    ///
    /// # Errors
    /// Returns a message when the input is not the expected JSON shape.
    pub fn from_json(input: &str) -> Result<RunLog, String> {
        let value = json::parse(input)?;
        RunLog::from_value(&value)
    }

    /// Parse a log from an already-parsed JSON value — the embedding used
    /// by simulation checkpoints, which nest the log inside a larger
    /// document.
    pub(crate) fn from_value(value: &json::Value) -> Result<RunLog, String> {
        let rounds = value
            .get("rounds")
            .and_then(json::Value::as_array)
            .ok_or_else(|| "missing \"rounds\" array".to_string())?;
        fn field<'v, T>(
            obj: &'v json::Value,
            key: &str,
            parse: impl Fn(&'v str) -> Option<T>,
        ) -> Result<T, String> {
            obj.get(key)
                .and_then(json::Value::as_number)
                .and_then(parse)
                .ok_or_else(|| format!("missing or malformed numeric field \"{key}\""))
        }
        // Floats additionally accept `null`, `to_json`'s spelling of a
        // non-finite value, and read it back as NaN.
        fn float<'v, T: Copy>(
            value: Option<&'v json::Value>,
            key: &str,
            parse: impl Fn(&'v str) -> Option<T>,
            nan: T,
        ) -> Result<T, String> {
            match value {
                Some(json::Value::Null) => Ok(nan),
                other => other
                    .and_then(json::Value::as_number)
                    .and_then(parse)
                    .ok_or_else(|| format!("missing or malformed float field \"{key}\"")),
            }
        }
        fn list<'v, T>(
            obj: &'v json::Value,
            key: &str,
            parse: impl Fn(&'v json::Value) -> Result<T, String>,
        ) -> Result<Vec<T>, String> {
            obj.get(key)
                .and_then(json::Value::as_array)
                .ok_or_else(|| format!("missing array field \"{key}\""))?
                .iter()
                .map(parse)
                .collect()
        }
        let f32p = |s: &str| s.parse::<f32>().ok();
        // The residency columns arrived with the lazy-fleet registry;
        // pre-registry logs parse with 0 (same spirit as an absent codec
        // field defaulting to Raw in scenario files).
        let count_or_zero = |obj: &json::Value, key: &str| -> Result<usize, String> {
            match obj.get(key) {
                None => Ok(0),
                Some(v) => v
                    .as_number()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| format!("malformed count field \"{key}\"")),
            }
        };
        let f32_field = |obj: &json::Value, key: &str| -> Result<f32, String> {
            float(obj.get(key), key, f32p, f32::NAN)
        };
        let mut log = RunLog::new();
        for obj in rounds {
            let global_accuracy = match obj.get("global_accuracy") {
                None | Some(json::Value::Null) => None,
                Some(v) => Some(
                    v.as_number()
                        .and_then(f32p)
                        .ok_or_else(|| "malformed \"global_accuracy\"".to_string())?,
                ),
            };
            log.push(RoundMetrics {
                round: field(obj, "round", |s| s.parse().ok())?,
                avg_device_accuracy: f32_field(obj, "avg_device_accuracy")?,
                device_accuracy: list(obj, "device_accuracy", |v| {
                    float(Some(v), "device_accuracy", f32p, f32::NAN)
                })?,
                global_accuracy,
                train_loss: f32_field(obj, "train_loss")?,
                upload_bytes: field(obj, "upload_bytes", |s| s.parse().ok())?,
                download_bytes: field(obj, "download_bytes", |s| s.parse().ok())?,
                sim_seconds: float(
                    obj.get("sim_seconds"),
                    "sim_seconds",
                    |s| s.parse::<f64>().ok(),
                    f64::NAN,
                )?,
                active_devices: list(obj, "active_devices", |v| {
                    v.as_number()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| "malformed entry in \"active_devices\"".to_string())
                })?,
                registered_devices: count_or_zero(obj, "registered_devices")?,
                peak_resident_devices: count_or_zero(obj, "peak_resident_devices")?,
                available_devices: count_or_zero(obj, "available_devices")?,
                dropped_devices: count_or_zero(obj, "dropped_devices")?,
            });
        }
        Ok(log)
    }

    /// Write the log as `<dir>/<name>.csv` and `<dir>/<name>.json`,
    /// creating `dir` if needed — the artifact pair every example and
    /// experiment binary emits.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn write_artifacts(
        &self,
        dir: impl AsRef<std::path::Path>,
        name: &str,
    ) -> std::io::Result<()> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join(format!("{name}.csv")), self.to_csv())?;
        std::fs::write(dir.join(format!("{name}.json")), self.to_json())
    }

    /// Render as CSV (header + one row per round).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "round,avg_device_accuracy,global_accuracy,train_loss,upload_bytes,download_bytes,sim_seconds,active_devices,registered_devices,peak_resident_devices,available_devices,dropped_devices\n",
        );
        for r in &self.rounds {
            out.push_str(&format!(
                "{},{:.4},{},{:.4},{},{},{:.2},{},{},{},{},{}\n",
                r.round,
                r.avg_device_accuracy,
                r.global_accuracy.map(|g| format!("{g:.4}")).unwrap_or_default(),
                r.train_loss,
                r.upload_bytes,
                r.download_bytes,
                r.sim_seconds,
                r.active_devices.len(),
                r.registered_devices,
                r.peak_resident_devices,
                r.available_devices,
                r.dropped_devices,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(round: usize, acc: f32) -> RoundMetrics {
        RoundMetrics { avg_device_accuracy: acc, ..RoundMetrics::new(round) }
    }

    #[test]
    fn final_and_best_accuracy() {
        let mut log = RunLog::new();
        log.push(record(1, 0.5));
        log.push(record(2, 0.8));
        log.push(record(3, 0.7));
        assert_eq!(log.final_accuracy(), 0.7);
        assert_eq!(log.best_accuracy(), 0.8);
        assert_eq!(log.accuracy_series(), vec![0.5, 0.8, 0.7]);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut log = RunLog::new();
        log.push(record(1, 0.25));
        let csv = log.to_csv();
        assert!(csv.starts_with("round,"));
        assert_eq!(csv.lines().count(), 2);
        assert!(csv.lines().nth(1).unwrap().starts_with("1,0.2500"));
    }

    #[test]
    fn empty_log_defaults() {
        let log = RunLog::new();
        assert_eq!(log.final_accuracy(), 0.0);
        assert_eq!(log.final_global_accuracy(), None);
    }

    #[test]
    fn json_roundtrip_is_exact() {
        let mut log = RunLog::new();
        log.push(RoundMetrics {
            round: 1,
            avg_device_accuracy: 0.123_456_79,
            device_accuracy: vec![0.1, 0.2, 0.070_123_45],
            global_accuracy: Some(0.998),
            train_loss: 1.5e-3,
            upload_bytes: u64::MAX,
            download_bytes: 0,
            sim_seconds: 1_234.567_890_123,
            active_devices: vec![0, 2],
            registered_devices: 1_000_000,
            peak_resident_devices: 1_024,
            available_devices: 250_000,
            dropped_devices: 3,
        });
        log.push(RoundMetrics {
            global_accuracy: None,
            sim_seconds: 0.0,
            ..RoundMetrics::new(2)
        });
        let json = log.to_json();
        let back = RunLog::from_json(&json).expect("parse back");
        assert_eq!(log, back);
        // Bit-exactness beyond PartialEq (−0.0 vs 0.0, float precision).
        for (a, b) in log.rounds.iter().zip(&back.rounds) {
            assert_eq!(a.sim_seconds.to_bits(), b.sim_seconds.to_bits());
            assert_eq!(a.avg_device_accuracy.to_bits(), b.avg_device_accuracy.to_bits());
            for (x, y) in a.device_accuracy.iter().zip(&b.device_accuracy) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn json_has_expected_shape() {
        let mut log = RunLog::new();
        log.push(record(1, 0.25));
        let json = log.to_json();
        assert!(json.starts_with("{\"rounds\":[{"));
        assert!(json.contains("\"avg_device_accuracy\":0.25"));
        assert!(json.contains("\"global_accuracy\":null"));
        assert!(RunLog::from_json(&json).is_ok());
    }

    #[test]
    fn non_finite_metrics_stay_valid_json() {
        // A diverged run: NaN loss must not break the artifact format.
        let mut log = RunLog::new();
        log.push(RoundMetrics {
            train_loss: f32::NAN,
            avg_device_accuracy: f32::INFINITY,
            device_accuracy: vec![0.5, f32::NAN],
            ..RoundMetrics::new(1)
        });
        let json = log.to_json();
        assert!(!json.contains("NaN") && !json.contains("inf"), "{json}");
        let back = RunLog::from_json(&json).expect("null-encoded non-finites parse");
        assert!(back.rounds[0].train_loss.is_nan());
        assert!(back.rounds[0].avg_device_accuracy.is_nan(), "inf flattens to NaN");
        assert_eq!(back.rounds[0].device_accuracy[0], 0.5);
        assert!(back.rounds[0].device_accuracy[1].is_nan());
    }

    #[test]
    fn pre_registry_logs_parse_with_zero_residency_columns() {
        // A round object written before the lazy-fleet columns existed.
        let old = "{\"rounds\":[{\"round\":1,\"avg_device_accuracy\":0.5,\
                   \"device_accuracy\":[0.5],\"global_accuracy\":null,\
                   \"train_loss\":0.1,\"upload_bytes\":10,\"download_bytes\":20,\
                   \"sim_seconds\":0,\"active_devices\":[0]}]}";
        let log = RunLog::from_json(old).expect("pre-registry log parses");
        assert_eq!(log.rounds[0].registered_devices, 0);
        assert_eq!(log.rounds[0].peak_resident_devices, 0);
        // The churn columns are newer still; they default the same way.
        assert_eq!(log.rounds[0].available_devices, 0);
        assert_eq!(log.rounds[0].dropped_devices, 0);
    }

    #[test]
    fn csv_includes_residency_columns() {
        let mut log = RunLog::new();
        log.push(RoundMetrics {
            registered_devices: 100,
            peak_resident_devices: 7,
            available_devices: 61,
            dropped_devices: 2,
            ..record(1, 0.25)
        });
        let csv = log.to_csv();
        assert!(csv.starts_with("round,"));
        assert!(csv
            .lines()
            .next()
            .unwrap()
            .ends_with("registered_devices,peak_resident_devices,available_devices,dropped_devices"));
        assert!(csv.lines().nth(1).unwrap().ends_with(",100,7,61,2"));
    }

    #[test]
    fn from_json_rejects_malformed_input() {
        assert!(RunLog::from_json("").is_err());
        assert!(RunLog::from_json("{}").is_err());
        assert!(RunLog::from_json("{\"rounds\":[{\"round\":1}]}").is_err());
        assert!(RunLog::from_json("{\"rounds\":[]} trailing").is_err());
        let empty = RunLog::from_json("{\"rounds\":[]}").expect("empty log");
        assert_eq!(empty, RunLog::new());
    }
}
