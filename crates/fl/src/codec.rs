//! Wire-format payload codecs.
//!
//! Until now the simulator accounted communication as raw `f32` state
//! bytes — the size a [`StateDict`] would occupy if every parameter were
//! shipped uncompressed. Real resource-constrained deployments (the
//! paper's motivating setting) compress the payload: quantization and
//! sparsification routinely cut uplink traffic by 4–10× at negligible
//! accuracy cost. This module makes that axis expressible: a
//! [`PayloadCodec`] turns a [`StateDict`] into concrete wire bytes and
//! back, the driver accounts the *encoded* size, and — because decoding a
//! lossy codec returns a perturbed state — compression error genuinely
//! flows into training instead of being wished away.
//!
//! The payload is a **named tensor bundle**, not necessarily a model: a
//! `StateDict` is just an ordered list of shaped tensors, so the same
//! four codecs carry FedAvg/Fed-ET weight dicts *and* FedGKT's per-sample
//! `{features [n,d], logits [n,C], labels [n]}` uplink. Uplink and
//! downlink may use different bundles — an algorithm declares both via
//! `FederatedAlgorithm::payload_template` / `downlink_template`, and the
//! driver sizes each direction from its own template (FedGKT's soft-label
//! downlink is a fraction of its feature uplink).
//!
//! ## The four codecs
//!
//! | [`CodecSpec`] | wire payload per tensor | lossy? |
//! |---|---|---|
//! | `Raw` | `4n` bytes of little-endian `f32` bits | no (bit-exact) |
//! | `QuantQ8` | 8-byte `(min, scale)` + `n` bytes (256 levels) | ≤ `scale/2` per element |
//! | `QuantQ4` | 8-byte `(min, scale)` + `⌈n/2⌉` bytes (16 levels) | ≤ `scale/2` per element |
//! | `TopK { density }` | 4-byte count + 8 bytes per kept element | zeroes all but the `k` largest magnitudes |
//!
//! Every payload starts with a self-describing header (codec id, tensor
//! count, shapes), so `decode` needs no out-of-band model description and
//! a device can never misinterpret a payload encoded for a different
//! architecture. [`PayloadCodec::wire_bytes`] returns exactly
//! `encode(sd).len()` without materialising the bytes — for all four
//! codecs the wire size is a pure function of the tensor shapes.
//!
//! ## Determinism and non-finite values
//!
//! Encoding and decoding are pure scalar arithmetic: same input, same
//! bytes, on every thread count — the workspace determinism guarantee
//! extends through lossy codecs. Non-finite values (a diverged run's
//! NaN/±∞) must not panic mid-simulation; the clamp policy is:
//!
//! * `Raw` and `TopK` store raw `f32` bits, so non-finite values round-trip
//!   (under `TopK`, NaN/±∞ order *above* every finite magnitude and are
//!   retained first);
//! * the quantizers compute their range over the **finite** elements only,
//!   then clamp: `+∞` to the range maximum, `-∞` to the minimum, and NaN
//!   to the minimum (the zero-point). A tensor with no finite element
//!   quantizes to all zeros.
//!
//! ## Adding a codec
//!
//! 1. Add a variant to [`CodecSpec`] with its parameters, a wire id in
//!    `wire_id`/`from_wire_id`, and a slug in `slug`/`parse`.
//! 2. Implement its per-tensor `encode_tensor_*` / `decode_tensor_*` pair
//!    and its arm in [`PayloadCodec::wire_bytes`] (the size must equal the
//!    encoded length *exactly* — the property suite enforces it).
//! 3. Serialize it in `fedzkt_scenario::serial` (writer + reader arm) and
//!    regenerate any golden preset that uses it.
//! 4. The codec property suite (`crates/fl/tests/codec_props.rs`), the
//!    protocol-invariant matrix and the determinism tests then apply to
//!    the new codec unchanged.

use fedzkt_nn::StateDict;
use fedzkt_tensor::ops::quant::{quant_range, quantize};
use fedzkt_tensor::typed::{Rows2D, RowsMut2D};
use fedzkt_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Wire-format version byte; bump on any incompatible layout change.
const WIRE_VERSION: u8 = 1;

/// Upper bound on a decoded tensor's element count (2^28 ≈ 268M values,
/// 1 GiB of f32) — orders of magnitude above any model in the workspace.
/// Decoding is exposed to *wire* data, so a corrupt or hostile header
/// claiming an absurd shape must surface as a [`CodecError`], not as an
/// allocation abort.
const MAX_TENSOR_ELEMENTS: usize = 1 << 28;

/// A malformed or truncated wire payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError(pub String);

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "codec error: {}", self.0)
    }
}

impl std::error::Error for CodecError {}

/// Which payload codec a run uses — serializable, `Copy`, and itself the
/// [`PayloadCodec`] implementation (enum dispatch; there is no boxed
/// registry to keep in sync).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum CodecSpec {
    /// Uncompressed little-endian `f32` — bit-exact, today's behaviour.
    #[default]
    Raw,
    /// Per-tensor affine 8-bit quantization (256 levels).
    QuantQ8,
    /// Per-tensor affine 4-bit quantization (16 levels, two per byte).
    QuantQ4,
    /// Magnitude top-k sparsification: keep `⌈density·n⌉` elements per
    /// tensor as `(u32 index, f32 value)` pairs, zero the rest.
    TopK {
        /// Fraction of elements kept per tensor, in `(0, 1]`.
        density: f32,
    },
}

impl CodecSpec {
    /// Short lowercase name for tables and artifact file names.
    pub fn name(&self) -> &'static str {
        match self {
            CodecSpec::Raw => "raw",
            CodecSpec::QuantQ8 => "q8",
            CodecSpec::QuantQ4 => "q4",
            CodecSpec::TopK { .. } => "topk",
        }
    }

    /// Parse a CLI-style codec reference: `raw`, `q8`, `q4`, `topk`
    /// (density 0.1) or `topk:<density>`.
    ///
    /// # Errors
    /// Returns a message for an unknown name or a malformed density.
    pub fn parse(reference: &str) -> Result<CodecSpec, String> {
        match reference {
            "raw" => Ok(CodecSpec::Raw),
            "q8" => Ok(CodecSpec::QuantQ8),
            "q4" => Ok(CodecSpec::QuantQ4),
            "topk" => Ok(CodecSpec::TopK { density: 0.1 }),
            other => match other.strip_prefix("topk:") {
                Some(density) => {
                    let density: f32 = density
                        .parse()
                        .map_err(|_| format!("topk: bad density \"{density}\""))?;
                    Ok(CodecSpec::TopK { density })
                }
                None => Err(format!("unknown codec \"{other}\" (raw|q8|q4|topk[:density])")),
            },
        }
    }

    /// Is the codec's parameterisation well-formed? (`TopK` needs a
    /// density in `(0, 1]`; the others have no knobs.)
    pub fn is_valid(&self) -> bool {
        match *self {
            CodecSpec::TopK { density } => density.is_finite() && density > 0.0 && density <= 1.0,
            _ => true,
        }
    }

    fn wire_id(&self) -> u8 {
        match self {
            CodecSpec::Raw => 0,
            CodecSpec::QuantQ8 => 1,
            CodecSpec::QuantQ4 => 2,
            CodecSpec::TopK { .. } => 3,
        }
    }

    /// Elements `TopK` keeps for an `n`-element tensor: `⌈density·n⌉`,
    /// at least 1 for a non-empty tensor, never more than `n`.
    fn top_k_len(density: f32, n: usize) -> usize {
        if n == 0 {
            return 0;
        }
        ((density as f64 * n as f64).ceil() as usize).clamp(1, n)
    }
}

/// A payload compression scheme: [`StateDict`] ⇄ wire bytes.
///
/// The contract, enforced by the property suite in
/// `crates/fl/tests/codec_props.rs`:
///
/// * `decode(encode(sd))` succeeds and preserves every tensor shape;
/// * `wire_bytes(sd) == encode(sd).len()`, exactly;
/// * encoding is deterministic (same input ⇒ same bytes) and total — it
///   never panics, including on empty, scalar-shaped, or non-finite
///   tensors (see the module docs for the non-finite clamp policy).
pub trait PayloadCodec {
    /// Encode a state dict into its wire form.
    fn encode(&self, sd: &StateDict) -> Vec<u8>;

    /// Decode a wire payload produced by [`PayloadCodec::encode`] on the
    /// *same* codec configuration.
    ///
    /// # Errors
    /// Returns [`CodecError`] on a truncated or foreign payload.
    fn decode(&self, bytes: &[u8]) -> Result<StateDict, CodecError>;

    /// The exact encoded size in bytes, without materialising the bytes.
    fn wire_bytes(&self, sd: &StateDict) -> usize;
}

// ---- little-endian primitives -------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f32(out: &mut Vec<u8>, v: f32) {
    out.extend_from_slice(&v.to_le_bytes());
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or_else(|| CodecError(format!("truncated payload at offset {}", self.pos)))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn f32(&mut self) -> Result<f32, CodecError> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn done(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

// ---- header -------------------------------------------------------------

fn write_header(codec: &CodecSpec, sd: &StateDict, out: &mut Vec<u8>) {
    out.push(codec.wire_id());
    out.push(WIRE_VERSION);
    put_u32(out, sd.params.len() as u32);
    put_u32(out, sd.buffers.len() as u32);
    for t in sd.iter_tensors() {
        out.push(t.shape().len() as u8);
        for &d in t.shape() {
            put_u32(out, d as u32);
        }
    }
}

/// Shapes of `(params, buffers)` recovered from a payload header.
fn read_header(
    codec: &CodecSpec,
    r: &mut Reader,
) -> Result<(Vec<Vec<usize>>, usize), CodecError> {
    let id = r.u8()?;
    if id != codec.wire_id() {
        return Err(CodecError(format!(
            "payload was encoded by codec id {id}, decoding as {}",
            codec.name()
        )));
    }
    let version = r.u8()?;
    if version != WIRE_VERSION {
        return Err(CodecError(format!("unsupported wire version {version}")));
    }
    let n_params = r.u32()? as usize;
    let n_buffers = r.u32()? as usize;
    let total = n_params
        .checked_add(n_buffers)
        .ok_or_else(|| CodecError("tensor count overflow".into()))?;
    // Capacity hints are capped: the counts are wire-controlled, and a
    // corrupt header must fail on the next read, not on an allocation.
    let mut shapes = Vec::with_capacity(total.min(1024));
    for _ in 0..total {
        let ndim = r.u8()? as usize;
        let mut shape = Vec::with_capacity(ndim);
        for _ in 0..ndim {
            shape.push(r.u32()? as usize);
        }
        // Reject shapes whose element count cannot be addressed — or is
        // implausibly large for this workspace — before allocating.
        let elements = shape
            .iter()
            .try_fold(1usize, |acc, &d| acc.checked_mul(d))
            .ok_or_else(|| CodecError("tensor shape overflow".into()))?;
        if elements > MAX_TENSOR_ELEMENTS {
            return Err(CodecError(format!(
                "tensor claims {elements} elements (limit {MAX_TENSOR_ELEMENTS})"
            )));
        }
        shapes.push(shape);
    }
    Ok((shapes, n_params))
}

fn assemble(shapes: Vec<Vec<usize>>, n_params: usize, tensors: Vec<Tensor>) -> StateDict {
    debug_assert_eq!(shapes.len(), tensors.len());
    let mut it = tensors.into_iter();
    let params: Vec<Tensor> = (&mut it).take(n_params).collect();
    let buffers: Vec<Tensor> = it.collect();
    StateDict { params, buffers }
}

fn tensor_from(shape: &[usize], data: Vec<f32>) -> Result<Tensor, CodecError> {
    Tensor::from_vec(data, shape).map_err(|e| CodecError(format!("rebuilding tensor: {e}")))
}

// ---- per-tensor codecs --------------------------------------------------
//
// The affine range/quantize arithmetic lives in `fedzkt_tensor::ops::quant`
// (imported at the top): one definition shared with the int8 *compute*
// format, so the wire codecs and the int8 GEMM agree on `(min, scale)`
// semantics — and on the `scale/2` per-element error bound — by
// construction.

fn encode_tensor_quant(data: &[f32], levels: f32, packed: bool, out: &mut Vec<u8>) {
    let (min, scale) = quant_range(data, levels);
    put_f32(out, min);
    put_f32(out, scale);
    if packed {
        // The nibble-pair stride is a compile-time fact: walk the largest
        // exact [_, 2] prefix through a typed view (pair width proven once
        // at the split, not per iteration), then the odd trailing element
        // explicitly — same bytes as a `chunks(2)` walk, stated in types.
        let (pairs, tail) = Rows2D::<2>::split(data);
        for &[lo, hi] in pairs.iter() {
            out.push(quantize(lo, min, scale, levels) | (quantize(hi, min, scale, levels) << 4));
        }
        if let Some(&last) = tail.first() {
            out.push(quantize(last, min, scale, levels));
        }
    } else {
        for &v in data {
            out.push(quantize(v, min, scale, levels));
        }
    }
}

fn decode_tensor_quant(
    r: &mut Reader,
    n: usize,
    packed: bool,
) -> Result<Vec<f32>, CodecError> {
    let min = r.f32()?;
    let scale = r.f32()?;
    // take() validates the length against the actual payload before any
    // n-sized allocation happens.
    if packed {
        let bytes = r.take(n.div_ceil(2))?;
        // Mirror of the packed encode: unpack nibble pairs through the
        // typed [_, 2] prefix, then the odd trailing element (low nibble
        // of the final byte) explicitly.
        let mut data = vec![0.0f32; n];
        let (mut pairs, tail) = RowsMut2D::<2>::split(&mut data);
        for (pair, &b) in pairs.iter_mut().zip(bytes) {
            pair[0] = min + scale * (b & 0x0F) as f32;
            pair[1] = min + scale * (b >> 4) as f32;
        }
        if let (Some(last), Some(&b)) = (tail.first_mut(), bytes.last()) {
            *last = min + scale * (b & 0x0F) as f32;
        }
        Ok(data)
    } else {
        Ok(r.take(n)?.iter().map(|&b| min + scale * b as f32).collect())
    }
}

/// The `k` indices of largest magnitude, deterministic under ties (lower
/// index wins) and total over non-finite values (`f32::total_cmp` on the
/// absolute value orders NaN/±∞ above every finite magnitude, so a
/// diverged tensor's worst offenders are exactly what gets shipped).
fn top_k_indices(data: &[f32], k: usize) -> Vec<u32> {
    if k == 0 {
        return Vec::new();
    }
    let mut order: Vec<u32> = (0..data.len() as u32).collect();
    // The comparator is a strict total order (index breaks ties), so the
    // k-smallest-under-it prefix is a unique *set* — partial selection is
    // deterministic — and encoding sits on every active device's round
    // critical path, so O(n + k log k) beats a full sort.
    if k < order.len() {
        order.select_nth_unstable_by(k - 1, |&a, &b| {
            f32::total_cmp(&data[b as usize].abs(), &data[a as usize].abs()).then(a.cmp(&b))
        });
        order.truncate(k);
    }
    order.sort_unstable(); // canonical wire order: ascending index
    order
}

fn encode_tensor_topk(data: &[f32], density: f32, out: &mut Vec<u8>) {
    let k = CodecSpec::top_k_len(density, data.len());
    put_u32(out, k as u32);
    for idx in top_k_indices(data, k) {
        put_u32(out, idx);
        put_f32(out, data[idx as usize]);
    }
}

fn decode_tensor_topk(r: &mut Reader, n: usize) -> Result<Vec<f32>, CodecError> {
    let k = r.u32()? as usize;
    if k > n {
        return Err(CodecError(format!("top-k count {k} exceeds tensor length {n}")));
    }
    let mut data = vec![0.0f32; n];
    for _ in 0..k {
        let idx = r.u32()? as usize;
        if idx >= n {
            return Err(CodecError(format!("top-k index {idx} out of range {n}")));
        }
        data[idx] = r.f32()?;
    }
    Ok(data)
}

impl PayloadCodec for CodecSpec {
    fn encode(&self, sd: &StateDict) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_bytes(sd));
        write_header(self, sd, &mut out);
        for t in sd.iter_tensors() {
            match *self {
                CodecSpec::Raw => {
                    for &v in t.data() {
                        put_f32(&mut out, v);
                    }
                }
                CodecSpec::QuantQ8 => encode_tensor_quant(t.data(), 255.0, false, &mut out),
                CodecSpec::QuantQ4 => encode_tensor_quant(t.data(), 15.0, true, &mut out),
                CodecSpec::TopK { density } => encode_tensor_topk(t.data(), density, &mut out),
            }
        }
        debug_assert_eq!(out.len(), self.wire_bytes(sd), "wire_bytes out of sync with encode");
        out
    }

    fn decode(&self, bytes: &[u8]) -> Result<StateDict, CodecError> {
        let mut r = Reader::new(bytes);
        let (shapes, n_params) = read_header(self, &mut r)?;
        let mut tensors = Vec::with_capacity(shapes.len());
        for shape in &shapes {
            let n = shape.iter().product::<usize>();
            let data = match *self {
                CodecSpec::Raw => {
                    let raw = r.take(4 * n)?;
                    raw.chunks_exact(4)
                        .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
                        .collect()
                }
                CodecSpec::QuantQ8 => decode_tensor_quant(&mut r, n, false)?,
                CodecSpec::QuantQ4 => decode_tensor_quant(&mut r, n, true)?,
                CodecSpec::TopK { .. } => decode_tensor_topk(&mut r, n)?,
            };
            tensors.push(tensor_from(shape, data)?);
        }
        if !r.done() {
            return Err(CodecError("trailing bytes after payload".into()));
        }
        Ok(assemble(shapes, n_params, tensors))
    }

    fn wire_bytes(&self, sd: &StateDict) -> usize {
        self.wire_bytes_for_shapes(sd.iter_tensors().map(Tensor::shape))
    }
}

impl CodecSpec {
    /// [`PayloadCodec::wire_bytes`] from tensor shapes alone — every
    /// codec's wire size is a pure function of shapes, so accounting
    /// paths (e.g. a lossless transfer that skips the decode-and-reload)
    /// need not materialise a [`StateDict`] snapshot at all.
    pub fn wire_bytes_for_shapes<'a>(
        &self,
        shapes: impl Iterator<Item = &'a [usize]>,
    ) -> usize {
        // Fixed header (id, version, two counts) + per-tensor shape
        // record + per-tensor body.
        10 + shapes
            .map(|shape| {
                let n: usize = shape.iter().product();
                let body = match *self {
                    CodecSpec::Raw => 4 * n,
                    CodecSpec::QuantQ8 => 8 + n,
                    CodecSpec::QuantQ4 => 8 + n.div_ceil(2),
                    CodecSpec::TopK { density } => 4 + 8 * CodecSpec::top_k_len(density, n),
                };
                1 + 4 * shape.len() + body
            })
            .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sd(tensors: Vec<Tensor>) -> StateDict {
        StateDict { params: tensors, buffers: Vec::new() }
    }

    const ALL: [CodecSpec; 4] = [
        CodecSpec::Raw,
        CodecSpec::QuantQ8,
        CodecSpec::QuantQ4,
        CodecSpec::TopK { density: 0.5 },
    ];

    #[test]
    fn raw_roundtrips_bit_exactly_with_buffers() {
        let dict = StateDict {
            params: vec![
                Tensor::from_vec(vec![1.5, -2.25, 0.0, -0.0], &[2, 2]).unwrap(),
                Tensor::from_vec(vec![f32::MIN_POSITIVE], &[1]).unwrap(),
            ],
            buffers: vec![Tensor::from_vec(vec![3.0, 4.0], &[2]).unwrap()],
        };
        let codec = CodecSpec::Raw;
        let back = codec.decode(&codec.encode(&dict)).unwrap();
        assert_eq!(back.params.len(), 2);
        assert_eq!(back.buffers.len(), 1);
        for (a, b) in dict
            .params
            .iter()
            .chain(&dict.buffers)
            .zip(back.params.iter().chain(&back.buffers))
        {
            assert_eq!(a.shape(), b.shape());
            for (x, y) in a.data().iter().zip(b.data()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn quantizers_bound_error_by_half_scale() {
        let data: Vec<f32> = (0..64).map(|i| (i as f32 * 0.37).sin() * 3.0).collect();
        let dict = sd(vec![Tensor::from_vec(data.clone(), &[64]).unwrap()]);
        for (codec, levels) in [(CodecSpec::QuantQ8, 255.0f32), (CodecSpec::QuantQ4, 15.0)] {
            let back = codec.decode(&codec.encode(&dict)).unwrap();
            let (min, max) = data.iter().fold((f32::INFINITY, f32::NEG_INFINITY), |(lo, hi), &v| {
                (lo.min(v), hi.max(v))
            });
            let scale = (max - min) / levels;
            for (x, y) in data.iter().zip(back.params[0].data()) {
                assert!(
                    (x - y).abs() <= scale * 0.5 + scale * 1e-4,
                    "{codec:?}: |{x} - {y}| > scale/2 = {}",
                    scale * 0.5
                );
            }
        }
    }

    #[test]
    fn non_finite_values_encode_and_decode_without_panicking() {
        let data = vec![f32::NAN, f32::INFINITY, f32::NEG_INFINITY, 1.0, -2.0, 0.5];
        let dict = sd(vec![Tensor::from_vec(data.clone(), &[6]).unwrap()]);
        for codec in ALL {
            let back = codec.decode(&codec.encode(&dict)).unwrap();
            let out = back.params[0].data();
            assert_eq!(out.len(), 6, "{codec:?}");
            match codec {
                // Raw ships the bits; TopK keeps the largest "magnitudes",
                // which under total order are exactly the non-finite ones.
                CodecSpec::Raw => {
                    assert!(out[0].is_nan() && out[1] == f32::INFINITY);
                    assert_eq!(out[2], f32::NEG_INFINITY);
                }
                CodecSpec::TopK { .. } => {
                    assert!(out[0].is_nan(), "NaN ranks above finite magnitudes");
                    assert_eq!(out[1], f32::INFINITY);
                    assert_eq!(out[2], f32::NEG_INFINITY);
                }
                // The quantizers clamp into the finite range [-2, 1]:
                // +inf to the max, -inf and NaN to the min.
                CodecSpec::QuantQ8 | CodecSpec::QuantQ4 => {
                    assert!(out.iter().all(|v| v.is_finite()), "{codec:?}: {out:?}");
                    assert!((out[1] - 1.0).abs() < 0.2, "+inf clamps to max, got {}", out[1]);
                    assert!((out[2] + 2.0).abs() < 0.2, "-inf clamps to min, got {}", out[2]);
                    assert!((out[0] + 2.0).abs() < 0.2, "NaN clamps to min, got {}", out[0]);
                }
            }
        }
    }

    #[test]
    fn all_non_finite_tensor_quantizes_to_zero() {
        let dict = sd(vec![Tensor::from_vec(vec![f32::NAN, f32::INFINITY], &[2]).unwrap()]);
        for codec in [CodecSpec::QuantQ8, CodecSpec::QuantQ4] {
            let back = codec.decode(&codec.encode(&dict)).unwrap();
            assert_eq!(back.params[0].data(), &[0.0, 0.0], "{codec:?}");
        }
    }

    #[test]
    fn topk_keeps_largest_magnitudes_and_breaks_ties_low_index_first() {
        let data = vec![0.1, -5.0, 2.0, 2.0, -0.2, 3.0];
        let dict = sd(vec![Tensor::from_vec(data, &[6]).unwrap()]);
        let codec = CodecSpec::TopK { density: 0.5 }; // k = 3
        let back = codec.decode(&codec.encode(&dict)).unwrap();
        // Kept: |-5| and |3| outright; the 2.0 at index 2 wins the tie.
        assert_eq!(back.params[0].data(), &[0.0, -5.0, 2.0, 0.0, 0.0, 3.0]);
    }

    #[test]
    fn decode_rejects_foreign_truncated_and_padded_payloads() {
        let dict = sd(vec![Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap()]);
        let raw = CodecSpec::Raw.encode(&dict);
        assert!(CodecSpec::QuantQ8.decode(&raw).is_err(), "codec id mismatch");
        assert!(CodecSpec::Raw.decode(&raw[..raw.len() - 1]).is_err(), "truncated");
        let mut padded = raw.clone();
        padded.push(0);
        assert!(CodecSpec::Raw.decode(&padded).is_err(), "trailing bytes");
        assert!(CodecSpec::Raw.decode(&[]).is_err(), "empty input");
        let mut wrong_version = raw;
        wrong_version[1] = 99;
        assert!(CodecSpec::Raw.decode(&wrong_version).is_err(), "future version");
    }

    #[test]
    fn corrupt_headers_error_instead_of_allocating() {
        // A 10-byte payload claiming u32::MAX params + u32::MAX buffers:
        // must come back as the documented CodecError (truncated), never
        // as an allocation abort.
        let mut huge_counts = vec![0u8, WIRE_VERSION];
        huge_counts.extend_from_slice(&u32::MAX.to_le_bytes());
        huge_counts.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(CodecSpec::Raw.decode(&huge_counts).is_err());

        // One tensor whose claimed shape is astronomically large (but not
        // usize-overflowing): rejected by the element cap up front.
        let mut huge_shape = vec![0u8, WIRE_VERSION];
        huge_shape.extend_from_slice(&1u32.to_le_bytes()); // 1 param
        huge_shape.extend_from_slice(&0u32.to_le_bytes()); // 0 buffers
        huge_shape.push(1); // ndim 1
        huge_shape.extend_from_slice(&(1u32 << 30).to_le_bytes());
        let err = CodecSpec::Raw.decode(&huge_shape).unwrap_err();
        assert!(err.0.contains("elements"), "{err}");
    }

    /// An empty FedGKT bundle — a device with zero local samples ships
    /// `{features [0, d], logits [0, C], labels [0]}` — must round-trip
    /// through every codec as zero-element tensors with shapes intact.
    #[test]
    fn empty_fedgkt_bundle_roundtrips_through_every_codec() {
        let dict = sd(vec![
            Tensor::zeros(&[0, 32]),
            Tensor::zeros(&[0, 10]),
            Tensor::zeros(&[0]),
        ]);
        for codec in ALL {
            let encoded = codec.encode(&dict);
            assert_eq!(encoded.len(), codec.wire_bytes(&dict), "{codec:?}");
            let back = codec.decode(&encoded).unwrap_or_else(|e| panic!("{codec:?}: {e}"));
            assert_eq!(back.params.len(), 3, "{codec:?}");
            for (a, b) in dict.params.iter().zip(&back.params) {
                assert_eq!(a.shape(), b.shape(), "{codec:?}");
                assert!(b.data().is_empty(), "{codec:?}");
            }
        }
    }

    /// Odd-length tensors exercise the packed codec's trailing element
    /// (the low nibble of the final byte) on both sides of the wire.
    #[test]
    fn q4_odd_length_tail_roundtrips() {
        for n in [1usize, 3, 7, 65] {
            let data: Vec<f32> = (0..n).map(|i| (i as f32 * 0.61).cos()).collect();
            let dict = sd(vec![Tensor::from_vec(data.clone(), &[n]).unwrap()]);
            let codec = CodecSpec::QuantQ4;
            let encoded = codec.encode(&dict);
            assert_eq!(encoded.len(), codec.wire_bytes(&dict), "n={n}");
            let back = codec.decode(&encoded).unwrap();
            assert_eq!(back.params[0].data().len(), n);
            // The tail element must carry a real value, not a zero slot.
            let (min, scale) = {
                let (lo, hi) = data.iter().fold(
                    (f32::INFINITY, f32::NEG_INFINITY),
                    |(lo, hi), &v| (lo.min(v), hi.max(v)),
                );
                (lo, (hi - lo) / 15.0)
            };
            let last = back.params[0].data()[n - 1];
            assert!(
                (last - data[n - 1]).abs() <= scale * 0.5 + 1e-4,
                "n={n}: tail {last} vs {} (min {min})",
                data[n - 1]
            );
        }
    }

    #[test]
    fn empty_state_dict_roundtrips() {
        let dict = StateDict { params: Vec::new(), buffers: Vec::new() };
        for codec in ALL {
            assert_eq!(codec.encode(&dict).len(), codec.wire_bytes(&dict), "{codec:?}");
            let back = codec.decode(&codec.encode(&dict)).unwrap();
            assert!(back.params.is_empty() && back.buffers.is_empty());
        }
    }

    #[test]
    fn parse_covers_the_cli_spellings() {
        assert_eq!(CodecSpec::parse("raw").unwrap(), CodecSpec::Raw);
        assert_eq!(CodecSpec::parse("q8").unwrap(), CodecSpec::QuantQ8);
        assert_eq!(CodecSpec::parse("q4").unwrap(), CodecSpec::QuantQ4);
        assert_eq!(CodecSpec::parse("topk").unwrap(), CodecSpec::TopK { density: 0.1 });
        assert_eq!(CodecSpec::parse("topk:0.25").unwrap(), CodecSpec::TopK { density: 0.25 });
        assert!(CodecSpec::parse("gzip").is_err());
        assert!(CodecSpec::parse("topk:lots").is_err());
    }

    #[test]
    fn validity_checks_the_topk_density() {
        assert!(CodecSpec::Raw.is_valid());
        assert!(CodecSpec::TopK { density: 1.0 }.is_valid());
        for density in [0.0f32, -0.5, 1.5, f32::NAN, f32::INFINITY] {
            assert!(!CodecSpec::TopK { density }.is_valid(), "{density}");
        }
    }
}
