//! Local (on-device) training — Algorithm 2 of the paper, with the
//! optional ℓ2 proximal term of Eq. 9 — the FedMD-style logit-digest
//! phase, and the device-parallel fleet driver used by the federated
//! orchestrators.

use fedzkt_autograd::loss::{cross_entropy, l2_penalty};
use fedzkt_autograd::Var;
use fedzkt_data::{BatchIter, Dataset};
use fedzkt_models::ModelSpec;
use fedzkt_nn::{load_state_dict, state_dict, Module, Optimizer, Sgd, SgdConfig, StateDict};
use fedzkt_tensor::{par, Tensor};

/// Configuration of one local-training call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocalTrainConfig {
    /// Local epochs `T_l`.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// SGD learning rate (paper: 0.01).
    pub lr: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// SGD weight decay.
    pub weight_decay: f32,
    /// Coefficient of the ℓ2 proximal term `μ‖w − w_received‖²` (Eq. 9);
    /// 0 disables it (plain Algorithm 2).
    pub prox_mu: f32,
    /// Shuffling seed.
    pub seed: u64,
}

impl Default for LocalTrainConfig {
    fn default() -> Self {
        LocalTrainConfig {
            epochs: 1,
            batch_size: 32,
            lr: 0.01,
            momentum: 0.9,
            weight_decay: 0.0,
            prox_mu: 0.0,
            seed: 0,
        }
    }
}

/// Train `model` on `data` with cross-entropy (Algorithm 2). When
/// `cfg.prox_mu > 0`, adds `μ‖w − w_received‖²` where `w_received` is the
/// parameter snapshot **at entry** — exactly the "parameter set transferred
/// from the server in the last iteration" of Eq. 9.
///
/// Returns the mean training loss of the final epoch (0 for empty shards,
/// which are silently skipped — a straggler that never collected data).
pub fn train_local(model: &dyn Module, data: &Dataset, cfg: &LocalTrainConfig) -> f32 {
    if data.is_empty() || cfg.epochs == 0 {
        return 0.0;
    }
    model.set_training(true);
    let reference: Option<Vec<Tensor>> = (cfg.prox_mu > 0.0)
        .then(|| model.params().iter().map(Var::value_clone).collect());
    let opt = Sgd::new(
        model.params(),
        SgdConfig { lr: cfg.lr, momentum: cfg.momentum, weight_decay: cfg.weight_decay },
    );
    let mut last_epoch_loss = 0.0f32;
    for epoch in 0..cfg.epochs {
        let mut epoch_loss = 0.0f32;
        let mut batches = 0usize;
        for batch in BatchIter::new(data.len(), cfg.batch_size, cfg.seed.wrapping_add(epoch as u64))
        {
            let (x, y) = data.batch(&batch);
            opt.zero_grad();
            let logits = model.forward(&Var::constant(x));
            let mut loss = cross_entropy(&logits, &y);
            if let Some(reference) = &reference {
                loss = loss.add(&l2_penalty(&model.params(), reference).scale(cfg.prox_mu));
            }
            epoch_loss += loss.value().item();
            batches += 1;
            loss.backward();
            opt.step();
        }
        last_epoch_loss = epoch_loss / batches.max(1) as f32;
    }
    last_epoch_loss
}

/// One device's unit of work for [`train_local_fleet`].
///
/// The autodiff tape is `Rc`-based and cannot cross threads, so a fleet job
/// carries everything needed to *rebuild* the device's model on a worker: the
/// architecture, a [`StateDict`] snapshot of its current parameters and
/// buffers (the snapshot round trip restores both bit-for-bit — guarded by
/// the checkpoint tests in `fedzkt-nn`), and `rebuild_seed`.
///
/// `rebuild_seed` seeds the rebuild's construction: the weight/buffer
/// initialisation it produces is immediately overwritten by the snapshot,
/// but any layer state *outside* the state dict (e.g. a dropout layer's
/// internal RNG — none of the current zoo uses one) is re-derived from it
/// rather than carried over from the live model. Callers must therefore
/// derive `rebuild_seed` from their run seed **per round and device** so
/// such state gets a fresh deterministic stream each round instead of
/// replaying one sequence forever.
pub struct FleetJob<'a> {
    /// Architecture to rebuild on the worker thread.
    pub spec: ModelSpec,
    /// Parameter/buffer snapshot loaded into the rebuilt model.
    pub snapshot: StateDict,
    /// The device's private shard.
    pub data: &'a Dataset,
    /// Local-training hyperparameters (including the device's RNG stream).
    pub cfg: LocalTrainConfig,
    /// Optional extra training pass over another dataset run *first*
    /// (FedMD's public→private transfer-learning warm-up); one fleet
    /// dispatch then covers both phases instead of paying the
    /// snapshot→rebuild→load round-trip twice.
    pub pretrain: Option<(&'a Dataset, LocalTrainConfig)>,
    /// Optional consensus-digest phase run *before* local training (FedMD's
    /// digest→revisit round structure); `None` for plain local SGD.
    pub digest: Option<DigestConfig<'a>>,
    /// Seed for the rebuild's (immediately overwritten) initialisation.
    pub rebuild_seed: u64,
}

/// Configuration of one FedMD-style digest phase: regress a device model's
/// logits on the alignment inputs toward the server's consensus with an ℓ1
/// loss (the MAE the FedMD paper prescribes). The alignment inputs and the
/// consensus are shared across the fleet, so jobs borrow them.
#[derive(Debug, Clone, Copy)]
pub struct DigestConfig<'a> {
    /// Alignment inputs scored by every device (NCHW).
    pub inputs: &'a Tensor,
    /// Consensus logits to regress toward, row-aligned with `inputs`.
    pub targets: &'a Tensor,
    /// Digestion epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// SGD learning rate (FedMD digests with a fraction of the base rate:
    /// raw-logit ℓ1 gradients dwarf cross-entropy's).
    pub lr: f32,
    /// Shuffling seed.
    pub seed: u64,
}

/// Run one digest phase on `model` (see [`DigestConfig`]).
pub fn digest_logits(model: &dyn Module, cfg: &DigestConfig<'_>) {
    let n = cfg.inputs.shape()[0];
    if n == 0 || cfg.epochs == 0 {
        return;
    }
    model.set_training(true);
    let opt = Sgd::new(model.params(), SgdConfig { lr: cfg.lr, momentum: 0.9, weight_decay: 0.0 });
    for epoch in 0..cfg.epochs {
        for batch in BatchIter::new(n, cfg.batch_size, cfg.seed.wrapping_add(epoch as u64)) {
            let x = cfg.inputs.gather_first(&batch).expect("alignment batch");
            let target = cfg.targets.gather_first(&batch).expect("consensus batch");
            opt.zero_grad();
            let pred = model.forward(&Var::constant(x));
            let loss = pred
                .sub(&Var::constant(target))
                .abs()
                .sum_all()
                .scale(1.0 / batch.len() as f32);
            loss.backward();
            opt.step();
        }
    }
}

/// Train a fleet of devices concurrently on up to `threads` scoped worker
/// threads, returning `(final-epoch loss, trained snapshot)` per job **in
/// job order**.
///
/// `io` is the data geometry `(channels, classes, img_size)` every model is
/// built for. Each job is an independent computation seeded by its own
/// `cfg.seed` stream, and every thread count — including 1 — runs the same
/// rebuild-load-pretrain-digest-train-snapshot sequence, so results are bit-identical
/// regardless of `threads` (the workspace determinism suite asserts this
/// across whole federated runs).
///
/// # Panics
/// Panics when a snapshot does not match its spec's architecture.
pub fn train_local_fleet(
    jobs: &[FleetJob<'_>],
    io: (usize, usize, usize),
    threads: usize,
) -> Vec<(f32, StateDict)> {
    let (channels, classes, img) = io;
    par::map_indexed(jobs.len(), threads, |i| {
        let job = &jobs[i];
        let model = job.spec.build(channels, classes, img, job.rebuild_seed);
        load_state_dict(model.as_ref(), &job.snapshot).expect("fleet snapshot matches spec");
        if let Some((data, cfg)) = &job.pretrain {
            train_local(model.as_ref(), data, cfg);
        }
        if let Some(digest) = &job.digest {
            digest_logits(model.as_ref(), digest);
        }
        let loss = train_local(model.as_ref(), job.data, &job.cfg);
        (loss, state_dict(model.as_ref()))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate;
    use fedzkt_data::{DataFamily, SynthConfig};
    use fedzkt_models::ModelSpec;

    fn toy_data(seed: u64) -> (Dataset, Dataset) {
        SynthConfig {
            family: DataFamily::MnistLike,
            img: 8,
            train_n: 80,
            test_n: 40,
            classes: 4,
            seed,
            ..Default::default()
        }
        .generate()
    }

    #[test]
    fn training_improves_accuracy() {
        let (train, test) = toy_data(1);
        let model = ModelSpec::SmallCnn { base_channels: 4 }.build(1, 4, 8, 2);
        let before = evaluate(model.as_ref(), &test, 32);
        let loss = train_local(
            model.as_ref(),
            &train,
            &LocalTrainConfig { epochs: 8, batch_size: 16, lr: 0.05, ..Default::default() },
        );
        let after = evaluate(model.as_ref(), &test, 32);
        assert!(loss.is_finite());
        assert!(after > before + 0.15, "before {before}, after {after}");
    }

    #[test]
    fn prox_term_limits_drift() {
        let (train, _) = toy_data(2);
        let free = ModelSpec::Mlp { hidden: 16 }.build(1, 4, 8, 3);
        let prox = ModelSpec::Mlp { hidden: 16 }.build(1, 4, 8, 3);
        let start: Vec<Tensor> = free.params().iter().map(Var::value_clone).collect();
        let cfg = LocalTrainConfig { epochs: 4, batch_size: 16, lr: 0.05, ..Default::default() };
        train_local(free.as_ref(), &train, &cfg);
        train_local(prox.as_ref(), &train, &LocalTrainConfig { prox_mu: 1.0, ..cfg });
        let drift = |m: &dyn Module| -> f32 {
            m.params()
                .iter()
                .zip(&start)
                .map(|(p, s)| p.value_clone().sub(s).unwrap().norm_l2())
                .sum()
        };
        assert!(drift(prox.as_ref()) < drift(free.as_ref()), "prox should reduce drift");
    }

    #[test]
    fn empty_shard_is_a_noop() {
        let model = ModelSpec::Mlp { hidden: 8 }.build(1, 2, 8, 4);
        let before: Vec<Tensor> = model.params().iter().map(Var::value_clone).collect();
        let data = Dataset::new(fedzkt_tensor::Tensor::zeros(&[0, 1, 8, 8]), vec![], 2);
        let loss = train_local(model.as_ref(), &data, &LocalTrainConfig::default());
        assert_eq!(loss, 0.0);
        for (p, b) in model.params().iter().zip(&before) {
            assert_eq!(&p.value_clone(), b);
        }
    }

    #[test]
    fn fleet_results_are_bit_identical_across_thread_counts() {
        let (train, _) = toy_data(4);
        let spec = ModelSpec::Mlp { hidden: 8 };
        let io = (1usize, 4usize, 8usize);
        let run = |threads: usize| {
            let jobs: Vec<FleetJob> = (0..3)
                .map(|k| FleetJob {
                    spec,
                    snapshot: state_dict(spec.build(io.0, io.1, io.2, 50 + k).as_ref()),
                    data: &train,
                    cfg: LocalTrainConfig { epochs: 1, seed: 90 + k, ..Default::default() },
                    pretrain: None,
                    digest: None,
                    rebuild_seed: 1000 + k,
                })
                .collect();
            train_local_fleet(&jobs, io, threads)
        };
        let serial = run(1);
        for threads in [2usize, 4] {
            let parallel = run(threads);
            assert_eq!(serial.len(), parallel.len());
            for ((ls, sds), (lp, sdp)) in serial.iter().zip(&parallel) {
                assert_eq!(ls.to_bits(), lp.to_bits(), "threads={threads}");
                assert_eq!(sds, sdp, "threads={threads}");
            }
        }
        // Devices trained with different seeds must actually diverge.
        assert_ne!(serial[0].1, serial[1].1);
    }

    #[test]
    fn fleet_matches_direct_local_training() {
        let (train, _) = toy_data(5);
        let spec = ModelSpec::Mlp { hidden: 8 };
        let io = (1usize, 4usize, 8usize);
        let cfg = LocalTrainConfig { epochs: 2, seed: 7, ..Default::default() };
        // Reference: train a model in place.
        let reference = spec.build(io.0, io.1, io.2, 42);
        let snapshot = state_dict(reference.as_ref());
        let ref_loss = train_local(reference.as_ref(), &train, &cfg);
        // Fleet: same snapshot, rebuilt on a worker.
        let jobs =
            [FleetJob {
                spec,
                snapshot,
                data: &train,
                cfg,
                pretrain: None,
                digest: None,
                rebuild_seed: 9,
            }];
        let out = train_local_fleet(&jobs, io, 2);
        assert_eq!(out[0].0.to_bits(), ref_loss.to_bits());
        assert_eq!(out[0].1, state_dict(reference.as_ref()));
    }

    #[test]
    fn fleet_digest_matches_direct_digest() {
        let (train, _) = toy_data(6);
        let spec = ModelSpec::Mlp { hidden: 8 };
        let io = (1usize, 4usize, 8usize);
        let mut rng = fedzkt_tensor::seeded_rng(11);
        let inputs = Tensor::randn(&[12, 1, 8, 8], &mut rng);
        let targets = Tensor::randn(&[12, 4], &mut rng);
        let digest_cfg = DigestConfig {
            inputs: &inputs,
            targets: &targets,
            epochs: 2,
            batch_size: 4,
            lr: 0.01,
            seed: 5,
        };
        let cfg = LocalTrainConfig { epochs: 1, seed: 8, ..Default::default() };
        // Reference: digest then train, in place.
        let reference = spec.build(io.0, io.1, io.2, 77);
        let snapshot = state_dict(reference.as_ref());
        digest_logits(reference.as_ref(), &digest_cfg);
        let ref_loss = train_local(reference.as_ref(), &train, &cfg);
        // Fleet: identical job, rebuilt on a worker.
        let jobs = [FleetJob {
            spec,
            snapshot,
            data: &train,
            cfg,
            pretrain: None,
            digest: Some(digest_cfg),
            rebuild_seed: 3,
        }];
        let out = train_local_fleet(&jobs, io, 2);
        assert_eq!(out[0].0.to_bits(), ref_loss.to_bits());
        assert_eq!(out[0].1, state_dict(reference.as_ref()));
    }

    #[test]
    fn deterministic_given_seed() {
        let (train, _) = toy_data(3);
        let run = || {
            let model = ModelSpec::Mlp { hidden: 8 }.build(1, 4, 8, 9);
            train_local(
                model.as_ref(),
                &train,
                &LocalTrainConfig { epochs: 2, seed: 77, ..Default::default() },
            );
            model.params()[0].value_clone()
        };
        assert_eq!(run(), run());
    }
}
