//! Active-device sampling: the straggler model of §IV-C3.

use fedzkt_tensor::{seeded_rng, split_seed};
use rand::seq::SliceRandom;

/// Samples which devices participate in each round.
///
/// In every round a fraction `p` of the `k` devices is active (at least
/// one); the remaining devices are stragglers that neither train nor
/// receive updates that round — exactly the protocol of Figure 6.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParticipationSampler {
    fraction: f32,
    devices: usize,
    seed: u64,
}

impl ParticipationSampler {
    /// Create a sampler over `devices` devices with participation fraction
    /// `fraction` (clamped to `(0, 1]`).
    ///
    /// # Panics
    /// Panics when `devices == 0` or `fraction <= 0`.
    pub fn new(devices: usize, fraction: f32, seed: u64) -> Self {
        assert!(devices > 0, "need at least one device");
        assert!(fraction > 0.0, "participation fraction must be positive");
        ParticipationSampler { fraction: fraction.min(1.0), devices, seed }
    }

    /// Number of active devices per round.
    pub fn active_count(&self) -> usize {
        ((self.devices as f32 * self.fraction).round() as usize).clamp(1, self.devices)
    }

    /// The sorted set of active devices for `round` (deterministic in
    /// `(seed, round)`).
    pub fn active(&self, round: usize) -> Vec<usize> {
        let m = self.active_count();
        if m == self.devices {
            return (0..self.devices).collect();
        }
        let mut rng = seeded_rng(split_seed(self.seed, round as u64));
        let mut ids: Vec<usize> = (0..self.devices).collect();
        ids.shuffle(&mut rng);
        let mut active = ids[..m].to_vec();
        active.sort_unstable();
        active
    }

    /// The sorted active subset of `pool` for `round` — the churn-aware
    /// sampling path. The participation fraction applies to the pool
    /// (the round's *available* devices), so a thinned fleet still
    /// fields at least one participant while anyone is online, and an
    /// empty pool yields an empty round.
    ///
    /// Over the full pool this is bit-identical to
    /// [`ParticipationSampler::active`]: the shuffle consumes the same
    /// seeded stream over the same elements, so attaching a quiescent
    /// churn model to a scenario changes nothing.
    pub fn active_among(&self, round: usize, pool: &[usize]) -> Vec<usize> {
        if pool.is_empty() {
            return Vec::new();
        }
        let m = ((pool.len() as f32 * self.fraction).round() as usize).clamp(1, pool.len());
        if m == pool.len() {
            return pool.to_vec();
        }
        let mut rng = seeded_rng(split_seed(self.seed, round as u64));
        let mut ids = pool.to_vec();
        ids.shuffle(&mut rng);
        let mut active = ids[..m].to_vec();
        active.sort_unstable();
        active
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_participation_selects_everyone() {
        let s = ParticipationSampler::new(10, 1.0, 1);
        assert_eq!(s.active(3), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn fraction_controls_count() {
        for (p, expected) in [(0.2f32, 2usize), (0.4, 4), (0.6, 6), (0.8, 8)] {
            let s = ParticipationSampler::new(10, p, 2);
            assert_eq!(s.active_count(), expected);
            assert_eq!(s.active(0).len(), expected);
        }
    }

    #[test]
    fn at_least_one_device() {
        let s = ParticipationSampler::new(3, 0.01, 3);
        assert_eq!(s.active_count(), 1);
    }

    #[test]
    fn deterministic_and_round_varying() {
        let s = ParticipationSampler::new(10, 0.4, 4);
        assert_eq!(s.active(5), s.active(5));
        let all_same = (0..10).all(|r| s.active(r) == s.active(0));
        assert!(!all_same, "different rounds should differ");
    }

    #[test]
    fn active_among_full_pool_matches_active_bit_for_bit() {
        for fraction in [0.1f32, 0.4, 0.7, 1.0] {
            let s = ParticipationSampler::new(23, fraction, 9);
            let all: Vec<usize> = (0..23).collect();
            for round in 0..10 {
                assert_eq!(s.active_among(round, &all), s.active(round), "fraction {fraction}");
            }
        }
    }

    #[test]
    fn active_among_respects_the_pool() {
        let s = ParticipationSampler::new(100, 0.5, 7);
        let pool: Vec<usize> = (0..100).filter(|k| k % 3 == 0).collect();
        let active = s.active_among(2, &pool);
        assert_eq!(active.len(), (pool.len() as f32 * 0.5).round() as usize);
        assert!(active.iter().all(|k| pool.contains(k)));
        assert!(active.windows(2).all(|w| w[0] < w[1]), "sorted and unique");
        // An empty pool is an empty round, never a panic.
        assert!(s.active_among(2, &[]).is_empty());
        // A one-device pool always fields that device.
        assert_eq!(s.active_among(2, &[42]), vec![42]);
    }

    #[test]
    fn ids_in_range_and_unique() {
        let s = ParticipationSampler::new(7, 0.5, 5);
        for round in 0..20 {
            let a = s.active(round);
            assert!(a.iter().all(|&d| d < 7));
            let mut dedup = a.clone();
            dedup.dedup();
            assert_eq!(dedup, a);
        }
    }
}
