//! A deliberately small JSON reader shared by the workspace's artifact
//! formats ([`RunLog::from_json`](crate::RunLog::from_json)) and the
//! declarative scenario files (`fedzkt_scenario`).
//!
//! The offline vendored `serde` is a derive shim without serialization, so
//! the wire formats are owned by the crates that write them; this module
//! only provides the value model and parser they read back with. Supported:
//! objects, arrays, numbers (kept as raw text so integer width and float
//! precision are decided by the caller), strings (with the two escapes the
//! workspace writers emit, `\"` and `\\`), booleans and `null`. Anything
//! else is rejected rather than guessed at.

use std::borrow::Cow;

/// A parsed JSON value; numbers stay as raw slices of the input.
#[derive(Debug)]
pub enum Value<'a> {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number, unparsed.
    Number(&'a str),
    /// A string (unescaped; borrowed when the input needed no escapes).
    String(Cow<'a, str>),
    /// An array.
    Array(Vec<Value<'a>>),
    /// An object (insertion-ordered).
    Object(Vec<(&'a str, Value<'a>)>),
}

impl<'a> Value<'a> {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value<'a>> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements when this is an array.
    pub fn as_array(&self) -> Option<&[Value<'a>]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The raw text when this is a number.
    pub fn as_number(&self) -> Option<&'a str> {
        match self {
            Value::Number(raw) => Some(raw),
            _ => None,
        }
    }

    /// The unescaped text when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value when this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The object fields when this is an object.
    pub fn as_object(&self) -> Option<&[(&'a str, Value<'a>)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }
}

/// Escape a string for embedding in a JSON document written by the
/// workspace's hand-rolled serializers (`"` and `\` only; all other
/// characters pass through, so callers should restrict themselves to
/// printable text).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            other => out.push(other),
        }
    }
    out
}

/// Parse one JSON document (trailing whitespace allowed).
///
/// # Errors
/// Returns a byte-positioned message when the input is not in the
/// supported subset.
pub fn parse(input: &str) -> Result<Value<'_>, String> {
    let mut p = Parser { bytes: input.as_bytes(), input, pos: 0 };
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing content at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    input: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Value<'a>) -> Result<Value<'a>, String> {
        if self.input[self.pos..].starts_with(word) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value<'a>, String> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b) if *b == b'-' || b.is_ascii_digit() => Ok(self.number()),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn number(&mut self) -> Value<'a> {
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(|b| {
            b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E')
        }) {
            self.pos += 1;
        }
        Value::Number(&self.input[start..self.pos])
    }

    /// A string value; only the escapes [`escape`] emits are accepted.
    fn string(&mut self) -> Result<Value<'a>, String> {
        let raw = self.raw_string()?;
        if !raw.contains('\\') {
            return Ok(Value::String(Cow::Borrowed(raw)));
        }
        let mut out = String::with_capacity(raw.len());
        let mut chars = raw.chars();
        while let Some(c) = chars.next() {
            if c != '\\' {
                out.push(c);
                continue;
            }
            match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                other => return Err(format!("unsupported escape \\{other:?}")),
            }
        }
        Ok(Value::String(Cow::Owned(out)))
    }

    /// The raw content between quotes, escapes unprocessed.
    fn raw_string(&mut self) -> Result<&'a str, String> {
        self.expect(b'"')?;
        let start = self.pos;
        while let Some(b) = self.bytes.get(self.pos) {
            match b {
                b'"' => {
                    let s = &self.input[start..self.pos];
                    self.pos += 1;
                    return Ok(s);
                }
                b'\\' => self.pos += 2,
                _ => self.pos += 1,
            }
        }
        Err("unterminated string".into())
    }

    /// Object keys: plain strings, no escapes (no workspace writer emits
    /// escaped keys).
    fn key(&mut self) -> Result<&'a str, String> {
        let raw = self.raw_string()?;
        if raw.contains('\\') {
            return Err("escapes are not supported in keys".into());
        }
        Ok(raw)
    }

    fn object(&mut self) -> Result<Value<'a>, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.key()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value<'a>, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        let v = parse(r#"{"a": [1, -2.5e3, null], "b": true, "c": "hi", "d": false}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[0].as_number(), Some("1"));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("c").unwrap().as_str(), Some("hi"));
        assert_eq!(v.get("d").unwrap().as_bool(), Some(false));
        assert!(matches!(v.get("a").unwrap().as_array().unwrap()[2], Value::Null));
    }

    #[test]
    fn string_escapes_roundtrip() {
        let original = "quote \" and backslash \\ done";
        let doc = format!("{{\"s\": \"{}\"}}", escape(original));
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some(original));
    }

    #[test]
    fn rejects_unsupported_input() {
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1, 2") .is_err());
        assert!(parse("{\"s\": \"\\n\"}").is_err(), "unsupported escape");
        assert!(parse("nul").is_err());
        assert!(parse("{} trailing").is_err());
    }

    #[test]
    fn empty_containers() {
        assert!(parse("{}").unwrap().as_object().unwrap().is_empty());
        assert!(parse("[]").unwrap().as_array().unwrap().is_empty());
    }
}
