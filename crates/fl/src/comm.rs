//! Communication accounting.
//!
//! A central claim of FedZKT is that devices only ever exchange *their own
//! on-device model parameters* — never the (large) global model or the
//! generator. The tracker lets experiments assert that per-round traffic
//! for device `k` is `O(|w_k|)`.

use serde::{Deserialize, Serialize};

/// Accumulates uplink/downlink bytes per device for one round.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommTracker {
    up: Vec<u64>,
    down: Vec<u64>,
}

impl CommTracker {
    /// Create a tracker for `devices` devices.
    pub fn new(devices: usize) -> Self {
        CommTracker { up: vec![0; devices], down: vec![0; devices] }
    }

    /// Record an upload (device → server).
    ///
    /// # Panics
    /// Panics when `device` is out of range.
    pub fn record_upload(&mut self, device: usize, bytes: usize) {
        self.up[device] += bytes as u64;
    }

    /// Record a download (server → device).
    ///
    /// # Panics
    /// Panics when `device` is out of range.
    pub fn record_download(&mut self, device: usize, bytes: usize) {
        self.down[device] += bytes as u64;
    }

    /// Uplink bytes of one device.
    pub fn upload_bytes(&self, device: usize) -> u64 {
        self.up[device]
    }

    /// Downlink bytes of one device.
    pub fn download_bytes(&self, device: usize) -> u64 {
        self.down[device]
    }

    /// Total uplink bytes across devices.
    pub fn total_upload(&self) -> u64 {
        self.up.iter().sum()
    }

    /// Total downlink bytes across devices.
    pub fn total_download(&self) -> u64 {
        self.down.iter().sum()
    }

    /// Reset all counters (start of a round).
    pub fn reset(&mut self) {
        self.up.iter_mut().for_each(|b| *b = 0);
        self.down.iter_mut().for_each(|b| *b = 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_and_resets() {
        let mut t = CommTracker::new(3);
        t.record_upload(0, 100);
        t.record_upload(0, 50);
        t.record_download(2, 10);
        assert_eq!(t.upload_bytes(0), 150);
        assert_eq!(t.download_bytes(2), 10);
        assert_eq!(t.total_upload(), 150);
        assert_eq!(t.total_download(), 10);
        t.reset();
        assert_eq!(t.total_upload() + t.total_download(), 0);
    }

    #[test]
    #[should_panic]
    fn rejects_out_of_range_device() {
        let mut t = CommTracker::new(1);
        t.record_upload(1, 1);
    }
}
