//! FedAvg and FedProx reference implementations (homogeneous on-device
//! models).
//!
//! These are the "classical federated learning" baselines of the paper's
//! §II-A: all devices share one architecture, and the server element-wise
//! averages parameters. They double as substrate validation (the FedZKT
//! claim is precisely that this paradigm breaks when architectures differ).

use crate::{
    evaluate, train_local_fleet, CommTracker, FleetJob, LocalTrainConfig, ParticipationSampler,
    RoundMetrics, RunLog,
};
use fedzkt_data::Dataset;
use fedzkt_models::ModelSpec;
use fedzkt_nn::{load_state_dict, state_dict, Module, StateDict};
use fedzkt_tensor::{par, split_seed};

/// Configuration for [`FedAvg`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FedAvgConfig {
    /// Communication rounds `T`.
    pub rounds: usize,
    /// Local epochs per round `T_l`.
    pub local_epochs: usize,
    /// Local mini-batch size.
    pub batch_size: usize,
    /// Local SGD learning rate.
    pub lr: f32,
    /// Local SGD momentum.
    pub momentum: f32,
    /// Participation fraction `p` (1.0 = all devices each round).
    pub participation: f32,
    /// FedProx proximal coefficient μ (0 = plain FedAvg).
    pub prox_mu: f32,
    /// Evaluation batch size.
    pub eval_batch: usize,
    /// Run seed.
    pub seed: u64,
    /// Worker threads for device-parallel local training; 0 resolves via
    /// [`fedzkt_tensor::par::max_threads`] (`FEDZKT_THREADS`, then available
    /// parallelism). Results are bit-identical for every value.
    pub threads: usize,
}

impl FedAvgConfig {
    /// The worker-thread count local training actually uses: `threads`, or
    /// — when 0 — the workspace default from
    /// [`fedzkt_tensor::par::max_threads`].
    pub fn resolved_threads(&self) -> usize {
        par::resolve_threads(self.threads)
    }
}

impl Default for FedAvgConfig {
    fn default() -> Self {
        FedAvgConfig {
            rounds: 10,
            local_epochs: 1,
            batch_size: 32,
            lr: 0.05,
            momentum: 0.9,
            participation: 1.0,
            prox_mu: 0.0,
            eval_batch: 64,
            seed: 0,
            threads: 0,
        }
    }
}

/// A FedAvg (or, with `prox_mu > 0`, FedProx) simulation over homogeneous
/// on-device models.
pub struct FedAvg {
    cfg: FedAvgConfig,
    spec: ModelSpec,
    io: (usize, usize, usize),
    global: Box<dyn Module>,
    shards: Vec<Dataset>,
    test: Dataset,
    sampler: ParticipationSampler,
    log: RunLog,
}

impl FedAvg {
    /// Build a simulation: every device runs `spec`; `shards[i]` is the
    /// index set of device `i` in `train`.
    ///
    /// # Panics
    /// Panics when `shards` is empty.
    pub fn new(spec: ModelSpec, train: &Dataset, shards: &[Vec<usize>], test: Dataset, cfg: FedAvgConfig) -> Self {
        assert!(!shards.is_empty(), "need at least one device");
        let io = (train.channels(), train.num_classes(), train.img_size());
        let global = spec.build(io.0, io.1, io.2, cfg.seed);
        let datasets = shards.iter().map(|idx| train.subset(idx)).collect();
        let sampler = ParticipationSampler::new(shards.len(), cfg.participation, split_seed(cfg.seed, 0xAC7));
        FedAvg { cfg, spec, io, global, shards: datasets, test, sampler, log: RunLog::new() }
    }

    /// Number of devices.
    pub fn devices(&self) -> usize {
        self.shards.len()
    }

    /// The run log so far.
    pub fn log(&self) -> &RunLog {
        &self.log
    }

    /// The global model.
    pub fn global_model(&self) -> &dyn Module {
        self.global.as_ref()
    }

    /// Execute one communication round.
    pub fn round(&mut self, round: usize) -> RoundMetrics {
        let active = self.sampler.active(round);
        let global_sd = state_dict(self.global.as_ref());
        let mut comm = CommTracker::new(self.shards.len());
        // Every active device starts from the broadcast global snapshot and
        // trains independently; the fleet driver runs them on worker threads
        // and returns updates in `active` order, so aggregation below is
        // bit-deterministic for any thread count.
        let jobs: Vec<FleetJob> = active
            .iter()
            .map(|&dev| FleetJob {
                spec: self.spec,
                snapshot: global_sd.clone(),
                data: &self.shards[dev],
                cfg: LocalTrainConfig {
                    epochs: self.cfg.local_epochs,
                    batch_size: self.cfg.batch_size,
                    lr: self.cfg.lr,
                    momentum: self.cfg.momentum,
                    weight_decay: 0.0,
                    prox_mu: self.cfg.prox_mu,
                    seed: split_seed(self.cfg.seed, (round * 1000 + dev) as u64),
                },
                rebuild_seed: split_seed(self.cfg.seed, 0xB11D_0000 + (round * 1000 + dev) as u64),
            })
            .collect();
        let results = train_local_fleet(&jobs, self.io, self.cfg.resolved_threads());
        drop(jobs);
        let mut updates: Vec<(usize, StateDict)> = Vec::with_capacity(active.len());
        let mut loss_sum = 0.0f32;
        for (&dev, (loss, sd)) in active.iter().zip(results) {
            comm.record_download(dev, global_sd.byte_size());
            loss_sum += loss;
            comm.record_upload(dev, sd.byte_size());
            updates.push((dev, sd));
        }
        // Weighted element-wise average (weights = shard sizes).
        let averaged = average_state_dicts(
            &updates
                .iter()
                .map(|(dev, sd)| (self.shards[*dev].len() as f32, sd))
                .collect::<Vec<_>>(),
        );
        load_state_dict(self.global.as_ref(), &averaged).expect("averaged state dict");

        let global_acc = evaluate(self.global.as_ref(), &self.test, self.cfg.eval_batch);
        let mut metrics = RoundMetrics::new(round + 1);
        metrics.global_accuracy = Some(global_acc);
        // Homogeneous setting: every device ends the round holding the
        // global model, so device accuracy == global accuracy.
        metrics.avg_device_accuracy = global_acc;
        metrics.device_accuracy = vec![global_acc; self.shards.len()];
        metrics.train_loss = loss_sum / active.len().max(1) as f32;
        metrics.upload_bytes = comm.total_upload();
        metrics.download_bytes = comm.total_download();
        metrics.active_devices = active;
        metrics
    }

    /// Run all configured rounds, returning the log.
    pub fn run(&mut self) -> &RunLog {
        for round in 0..self.cfg.rounds {
            let metrics = self.round(round);
            self.log.push(metrics);
        }
        &self.log
    }
}

/// Weighted element-wise average of state dicts (FedAvg aggregation).
///
/// # Panics
/// Panics when the list is empty or layouts disagree.
pub(crate) fn average_state_dicts(weighted: &[(f32, &StateDict)]) -> StateDict {
    assert!(!weighted.is_empty(), "no updates to average");
    let total: f32 = weighted.iter().map(|(w, _)| *w).sum();
    let mut out = weighted[0].1.clone();
    let scale0 = weighted[0].0 / total;
    for t in out.params.iter_mut().chain(out.buffers.iter_mut()) {
        *t = t.mul_scalar(scale0);
    }
    for (w, sd) in &weighted[1..] {
        let scale = *w / total;
        for (acc, t) in out.params.iter_mut().zip(&sd.params) {
            acc.add_scaled_inplace(t, scale).expect("param layout");
        }
        for (acc, t) in out.buffers.iter_mut().zip(&sd.buffers) {
            acc.add_scaled_inplace(t, scale).expect("buffer layout");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedzkt_data::{DataFamily, Partition, SynthConfig};

    fn setup(prox_mu: f32, participation: f32) -> FedAvg {
        let (train, test) = SynthConfig {
            family: DataFamily::MnistLike,
            img: 8,
            train_n: 120,
            test_n: 60,
            classes: 4,
            seed: 5,
            ..Default::default()
        }
        .generate();
        let shards = Partition::Iid.split(train.labels(), 4, 3, 7).unwrap();
        FedAvg::new(
            ModelSpec::Mlp { hidden: 24 },
            &train,
            &shards,
            test,
            FedAvgConfig {
                rounds: 4,
                local_epochs: 2,
                batch_size: 16,
                lr: 0.05,
                participation,
                prox_mu,
                seed: 1,
                ..Default::default()
            },
        )
    }

    #[test]
    fn fedavg_learns_above_chance() {
        let mut fed = setup(0.0, 1.0);
        let log = fed.run();
        assert_eq!(log.rounds.len(), 4);
        assert!(log.final_accuracy() > 0.4, "accuracy {}", log.final_accuracy());
    }

    #[test]
    fn fedprox_also_learns() {
        let mut fed = setup(0.5, 1.0);
        assert!(fed.run().final_accuracy() > 0.35);
    }

    #[test]
    fn partial_participation_still_progresses() {
        let mut fed = setup(0.0, 0.5);
        let log = fed.run();
        assert!(log.rounds.iter().all(|r| r.active_devices.len() == 2));
        assert!(log.final_accuracy() > 0.3);
    }

    #[test]
    fn comm_bytes_match_model_size() {
        let mut fed = setup(0.0, 1.0);
        let metrics = fed.round(0);
        let sd_bytes = state_dict(fed.global_model()).byte_size() as u64;
        assert_eq!(metrics.upload_bytes, 3 * sd_bytes);
        assert_eq!(metrics.download_bytes, 3 * sd_bytes);
    }

    #[test]
    fn average_state_dicts_weighted() {
        use fedzkt_tensor::Tensor;
        let a = StateDict { params: vec![Tensor::full(&[2], 0.0)], buffers: vec![] };
        let b = StateDict { params: vec![Tensor::full(&[2], 3.0)], buffers: vec![] };
        let avg = average_state_dicts(&[(1.0, &a), (2.0, &b)]);
        assert_eq!(avg.params[0].data(), &[2.0, 2.0]);
    }
}
