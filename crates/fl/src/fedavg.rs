//! FedAvg and FedProx reference implementations (homogeneous on-device
//! models).
//!
//! These are the "classical federated learning" baselines of the paper's
//! §II-A: all devices share one architecture, and the server element-wise
//! averages parameters. They double as substrate validation (the FedZKT
//! claim is precisely that this paradigm breaks when architectures differ).
//!
//! Run under the [`Simulation`](crate::Simulation) driver — see
//! [`FederatedAlgorithm`] for the phase contract.
//!
//! ## Scale model
//!
//! FedAvg's devices are *stateless between rounds*: every round starts
//! from the broadcast global snapshot, so the only per-device state is the
//! data shard. Under [`Materialization::Lazy`] the federation therefore
//! keeps just the shard **index sets** and materializes a device's shard
//! only while it is sampled; the server folds decoded uplinks into a
//! [`StreamingAverage`] as they arrive instead of collecting them. Peak
//! memory is O(sampled-per-round), never O(registered fleet) — the bound
//! the workspace memory-bound regression test enforces on the
//! [`DeviceRegistry`] counters.

use crate::{
    train_local_fleet, AlgoState, DeviceRegistry, FederatedAlgorithm, FleetJob, LocalTrainConfig,
    Materialization, RoundContext, SimConfig, StreamingAverage,
};
use fedzkt_data::Dataset;
use fedzkt_models::ModelSpec;
use fedzkt_nn::{load_state_dict, state_dict, Module, StateDict};
use fedzkt_tensor::split_seed;

/// Hyperparameters of [`FedAvg`]'s update rules. Protocol-level knobs
/// (rounds, participation, seed, threads, evaluation) live in
/// [`SimConfig`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FedAvgConfig {
    /// Local epochs per round `T_l`.
    pub local_epochs: usize,
    /// Local mini-batch size.
    pub batch_size: usize,
    /// Local SGD learning rate.
    pub lr: f32,
    /// Local SGD momentum.
    pub momentum: f32,
    /// FedProx proximal coefficient μ (0 = plain FedAvg).
    pub prox_mu: f32,
}

impl Default for FedAvgConfig {
    fn default() -> Self {
        FedAvgConfig { local_epochs: 1, batch_size: 32, lr: 0.05, momentum: 0.9, prox_mu: 0.0 }
    }
}

/// Device data, stored per the fleet's materialization mode: eager keeps
/// every shard sliced; lazy keeps one training set plus per-device index
/// sets, and slices a shard only while its device is sampled.
enum ShardStore {
    Eager(Vec<Dataset>),
    Lazy { train: Dataset, index: Vec<Vec<usize>> },
}

impl ShardStore {
    fn devices(&self) -> usize {
        match self {
            ShardStore::Eager(shards) => shards.len(),
            ShardStore::Lazy { index, .. } => index.len(),
        }
    }

    fn shard_len(&self, k: usize) -> usize {
        match self {
            ShardStore::Eager(shards) => shards[k].len(),
            ShardStore::Lazy { index, .. } => index[k].len(),
        }
    }
}

/// A FedAvg (or, with `prox_mu > 0`, FedProx) federation over homogeneous
/// on-device models.
pub struct FedAvg {
    cfg: FedAvgConfig,
    seed: u64,
    spec: ModelSpec,
    io: (usize, usize, usize),
    global: Box<dyn Module>,
    shards: ShardStore,
    registry: DeviceRegistry,
    /// Running weighted fold of the round's decoded uplinks, built in
    /// `local_update` (ascending device-id order), consumed by
    /// `server_update`.
    pending: Option<StreamingAverage>,
}

impl FedAvg {
    /// Build the federation: every device runs `spec`; `shards[i]` is the
    /// index set of device `i` in `train`. `sim` supplies the run seed and
    /// the fleet's [`Materialization`] mode.
    ///
    /// # Panics
    /// Panics when `shards` is empty.
    pub fn new(
        spec: ModelSpec,
        train: &Dataset,
        shards: &[Vec<usize>],
        cfg: FedAvgConfig,
        sim: &SimConfig,
    ) -> Self {
        assert!(!shards.is_empty(), "need at least one device");
        let io = (train.channels(), train.num_classes(), train.img_size());
        let global = spec.build(io.0, io.1, io.2, sim.seed);
        let (store, registry) = match sim.materialization {
            Materialization::Eager => (
                ShardStore::Eager(shards.iter().map(|idx| train.subset(idx)).collect()),
                DeviceRegistry::eager(shards.len()),
            ),
            Materialization::Lazy => (
                ShardStore::Lazy { train: train.clone(), index: shards.to_vec() },
                DeviceRegistry::new(shards.len()),
            ),
        };
        FedAvg { cfg, seed: sim.seed, spec, io, global, shards: store, registry, pending: None }
    }
}

impl FederatedAlgorithm for FedAvg {
    fn devices(&self) -> usize {
        self.shards.devices()
    }

    /// Every active device starts from the broadcast global snapshot —
    /// **as decoded from the wire**, so a lossy codec's quantization error
    /// is what the devices actually train from — and trains independently;
    /// the fleet driver runs them on worker threads and returns updates in
    /// `active` order (ascending device ids), so folding each decoded
    /// uplink into the running [`StreamingAverage`] as it is consumed is
    /// bit-deterministic for any thread count **and** bit-identical to the
    /// batch average the eager implementation used.
    fn local_update(&mut self, round: usize, active: &[usize], ctx: &mut RoundContext) -> f32 {
        // One broadcast payload: encoded once, every recipient charged its
        // wire size and handed the same decoded state (lossless codecs
        // broadcast the snapshot itself — no wire round-trip).
        let (global_sd, down_wire) = {
            let sd = state_dict(self.global.as_ref());
            if ctx.lossless() {
                let wire = ctx.wire_size(&sd);
                (sd, wire)
            } else {
                ctx.through_wire(&sd)
            }
        };
        // Lazy fleet: materialize the active shards for the duration of
        // the dispatch (the data is the only per-device state — models are
        // rebuilt from the broadcast snapshot on the workers).
        let staged: Vec<Dataset> = match &self.shards {
            ShardStore::Eager(_) => Vec::new(),
            ShardStore::Lazy { train, index } => active
                .iter()
                .map(|&dev| {
                    self.registry.checkout(dev);
                    train.subset(&index[dev])
                })
                .collect(),
        };
        let jobs: Vec<FleetJob> = active
            .iter()
            .enumerate()
            .map(|(i, &dev)| FleetJob {
                spec: self.spec,
                snapshot: global_sd.clone(),
                data: match &self.shards {
                    ShardStore::Eager(shards) => &shards[dev],
                    ShardStore::Lazy { .. } => &staged[i],
                },
                cfg: LocalTrainConfig {
                    epochs: self.cfg.local_epochs,
                    batch_size: self.cfg.batch_size,
                    lr: self.cfg.lr,
                    momentum: self.cfg.momentum,
                    weight_decay: 0.0,
                    prox_mu: self.cfg.prox_mu,
                    seed: split_seed(self.seed, (round * 1000 + dev) as u64),
                },
                pretrain: None,
                digest: None,
                rebuild_seed: split_seed(self.seed, 0xB11D_0000 + (round * 1000 + dev) as u64),
            })
            .collect();
        let results = train_local_fleet(&jobs, self.io, ctx.threads());
        drop(jobs);
        drop(staged);
        if let ShardStore::Lazy { .. } = self.shards {
            for &dev in active {
                self.registry.release(dev);
            }
        }
        // Stream the aggregation: the total weight is known before any
        // uplink arrives (shard sizes), so each decoded update is folded
        // into the running weighted sum and dropped — the server never
        // holds more than the accumulator plus one in-flight state.
        let total: f32 = active.iter().map(|&dev| self.shards.shard_len(dev) as f32).sum();
        let mut fold = StreamingAverage::new(total);
        let mut loss_sum = 0.0f32;
        for (&dev, (loss, sd)) in active.iter().zip(results) {
            ctx.comm.record_download(dev, down_wire);
            loss_sum += loss;
            let weight = self.shards.shard_len(dev) as f32;
            // The server aggregates what it received over the wire, not
            // the device's exact local state (a lossless codec makes the
            // two identical, so the update moves without a round-trip).
            if ctx.lossless() {
                ctx.comm.record_upload(dev, ctx.wire_size(&sd));
                fold.fold(weight, &sd);
            } else {
                let (uploaded, up_wire) = ctx.through_wire(&sd);
                ctx.comm.record_upload(dev, up_wire);
                fold.fold(weight, &uploaded);
            }
        }
        self.pending = Some(fold);
        loss_sum / active.len().max(1) as f32
    }

    /// Load the round's completed streaming fold (weights = shard sizes)
    /// into the global model.
    fn server_update(&mut self, _round: usize, _active: &[usize], _ctx: &mut RoundContext) {
        let Some(fold) = self.pending.take() else { return };
        if fold.folded() == 0 {
            return;
        }
        load_state_dict(self.global.as_ref(), &fold.finish()).expect("averaged state dict");
    }

    /// Homogeneous setting: every device ends the round holding the global
    /// model, so the driver's identity-deduplicated evaluation charges one
    /// evaluation for the whole fleet.
    fn device_model(&self, _k: usize) -> &dyn Module {
        self.global.as_ref()
    }

    fn global_model(&self) -> Option<&dyn Module> {
        Some(self.global.as_ref())
    }

    fn payload_template(&self, _k: usize) -> StateDict {
        state_dict(self.global.as_ref())
    }

    fn local_samples(&self, k: usize) -> usize {
        self.cfg.local_epochs * self.shards.shard_len(k)
    }

    fn construction_seed(&self) -> Option<u64> {
        Some(self.seed)
    }

    fn registry(&self) -> Option<&DeviceRegistry> {
        Some(&self.registry)
    }

    /// FedAvg's only evolving state is the global model — devices are
    /// stateless between rounds and `pending` never survives a round —
    /// plus the registry's monotone residency counters.
    fn save_state(&self) -> AlgoState {
        let mut state = AlgoState::new();
        state.put_dict("global", &state_dict(self.global.as_ref()));
        state.put_words(
            "registry",
            vec![self.registry.peak_resident() as u64, self.registry.touched() as u64],
        );
        state
    }

    fn load_state(&mut self, state: &AlgoState) -> Result<(), String> {
        load_state_dict(self.global.as_ref(), &state.dict("global")?)
            .map_err(|e| format!("global model: {e}"))?;
        let reg = state.words("registry")?;
        if reg.len() != 2 {
            return Err("registry counters must be [peak_resident, touched]".into());
        }
        self.registry.absorb_counters(reg[0] as usize, reg[1] as usize);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{average_state_dicts, CodecSpec, PayloadCodec, Simulation};
    use fedzkt_data::{DataFamily, Partition, SynthConfig};

    fn setup_mode(prox_mu: f32, participation: f32, mode: Materialization) -> Simulation<FedAvg> {
        let (train, test) = SynthConfig {
            family: DataFamily::MnistLike,
            img: 8,
            train_n: 120,
            test_n: 60,
            classes: 4,
            seed: 5,
            ..Default::default()
        }
        .generate();
        let shards = Partition::Iid.split(train.labels(), 4, 3, 7).unwrap();
        let sim = SimConfig {
            rounds: 4,
            participation,
            seed: 1,
            materialization: mode,
            ..Default::default()
        };
        let fed = FedAvg::new(
            ModelSpec::Mlp { hidden: 24 },
            &train,
            &shards,
            FedAvgConfig { local_epochs: 2, batch_size: 16, lr: 0.05, prox_mu, ..Default::default() },
            &sim,
        );
        Simulation::builder(fed, test, sim).build()
    }

    fn setup(prox_mu: f32, participation: f32) -> Simulation<FedAvg> {
        setup_mode(prox_mu, participation, Materialization::Eager)
    }

    #[test]
    fn fedavg_learns_above_chance() {
        let mut sim = setup(0.0, 1.0);
        let log = sim.run();
        assert_eq!(log.rounds.len(), 4);
        assert!(log.final_accuracy() > 0.4, "accuracy {}", log.final_accuracy());
    }

    #[test]
    fn fedprox_also_learns() {
        let mut sim = setup(0.5, 1.0);
        assert!(sim.run().final_accuracy() > 0.35);
    }

    #[test]
    fn partial_participation_still_progresses() {
        let mut sim = setup(0.0, 0.67);
        let log = sim.run();
        assert!(log.rounds.iter().all(|r| r.active_devices.len() == 2));
        assert!(log.final_accuracy() > 0.3);
    }

    #[test]
    fn lazy_run_is_bit_identical_to_eager() {
        // The tentpole contract at unit scale: same seed, both modes, every
        // logged quantity identical except the residency gauge.
        let eager = setup_mode(0.0, 0.67, Materialization::Eager).run().clone();
        let lazy = setup_mode(0.0, 0.67, Materialization::Lazy).run().clone();
        assert_eq!(eager.rounds.len(), lazy.rounds.len());
        for (a, b) in eager.rounds.iter().zip(&lazy.rounds) {
            assert_eq!(a.train_loss.to_bits(), b.train_loss.to_bits());
            assert_eq!(a.device_accuracy, b.device_accuracy);
            assert_eq!(a.upload_bytes, b.upload_bytes);
            assert_eq!(a.active_devices, b.active_devices);
        }
    }

    #[test]
    fn lazy_registry_peaks_at_the_sampled_count() {
        let mut sim = setup_mode(0.0, 0.67, Materialization::Lazy);
        sim.run();
        let reg = sim.algorithm().registry().expect("fedavg exposes its registry");
        assert_eq!(reg.registered(), 3);
        assert_eq!(reg.peak_resident(), 2, "peak must be the 2 sampled devices");
        assert_eq!(reg.resident(), 0, "everything released after merge");
    }

    #[test]
    fn eager_registry_reports_the_whole_fleet_resident() {
        let mut sim = setup_mode(0.0, 0.67, Materialization::Eager);
        sim.run();
        let reg = sim.algorithm().registry().unwrap();
        assert_eq!(reg.resident(), 3);
        assert_eq!(reg.peak_resident(), 3);
    }

    #[test]
    fn checkpoint_resume_matches_the_uninterrupted_run_bit_for_bit() {
        for mode in [Materialization::Eager, Materialization::Lazy] {
            let reference = setup_mode(0.0, 0.67, mode).run().clone();
            let mut first = setup_mode(0.0, 0.67, mode);
            first.round(0);
            first.round(1);
            // Through the serialized form, as a real kill/restart would go.
            let ck = crate::SimCheckpoint::from_json(&first.checkpoint().to_json()).unwrap();
            drop(first);
            let mut resumed = setup_mode(0.0, 0.67, mode);
            resumed.resume_from(&ck).expect("resume");
            let log = resumed.run().clone();
            assert_eq!(log.to_json(), reference.to_json(), "mode {mode:?}");
        }
    }

    #[test]
    fn comm_bytes_match_model_wire_size() {
        let mut sim = setup(0.0, 1.0);
        let metrics = sim.round(0);
        let wire = CodecSpec::Raw.wire_bytes(&sim.algorithm().payload_template(0)) as u64;
        assert_eq!(metrics.upload_bytes, 3 * wire);
        assert_eq!(metrics.download_bytes, 3 * wire);
    }

    #[test]
    fn lossy_codec_error_flows_into_training() {
        // Same seed, different codec: the Q4 run aggregates from decoded
        // (quantized) uploads and broadcasts a quantized global, so its
        // global model must genuinely diverge from the raw run's.
        let run = |codec: CodecSpec| {
            let (train, test) = SynthConfig {
                family: DataFamily::MnistLike,
                img: 8,
                train_n: 120,
                test_n: 60,
                classes: 4,
                seed: 5,
                ..Default::default()
            }
            .generate();
            let shards = Partition::Iid.split(train.labels(), 4, 3, 7).unwrap();
            let sim = SimConfig { rounds: 1, seed: 1, codec, ..Default::default() };
            let fed = FedAvg::new(
                ModelSpec::Mlp { hidden: 24 },
                &train,
                &shards,
                FedAvgConfig { local_epochs: 1, batch_size: 16, ..Default::default() },
                &sim,
            );
            let mut sim = Simulation::builder(fed, test, sim).build();
            sim.round(0);
            state_dict(sim.algorithm().global_model().unwrap())
        };
        let raw = run(CodecSpec::Raw);
        let q4 = run(CodecSpec::QuantQ4);
        assert_ne!(raw, q4, "quantization error never reached the aggregate");
        // But quantization is a small perturbation, not a rewrite.
        for (a, b) in raw.params.iter().zip(&q4.params) {
            let diff = a.sub(b).unwrap();
            assert!(diff.norm_l2() < 0.5 * a.norm_l2().max(1e-3), "implausibly large drift");
        }
    }

    #[test]
    fn device_accuracy_equals_global_accuracy() {
        let mut sim = setup(0.0, 1.0);
        let metrics = sim.round(0);
        // One shared model: every device reports the same accuracy, which
        // is also the global accuracy (the average may differ by an ulp
        // from the summation).
        assert!(metrics.device_accuracy.windows(2).all(|w| w[0] == w[1]));
        assert_eq!(metrics.global_accuracy, Some(metrics.device_accuracy[0]));
        assert!((metrics.avg_device_accuracy - metrics.device_accuracy[0]).abs() < 1e-5);
    }

    #[test]
    fn average_state_dicts_weighted() {
        use fedzkt_tensor::Tensor;
        let a = StateDict { params: vec![Tensor::full(&[2], 0.0)], buffers: vec![] };
        let b = StateDict { params: vec![Tensor::full(&[2], 3.0)], buffers: vec![] };
        let avg = average_state_dicts(&[(1.0, &a), (2.0, &b)]);
        assert_eq!(avg.params[0].data(), &[2.0, 2.0]);
    }
}
