//! The lazy, sharded device registry behind million-device fleets.
//!
//! FedZKT targets the *cross-device* regime: a huge registered population
//! of which only a small fraction is sampled each round. Materializing
//! every device's model up front — the eager fleet the first PRs used —
//! turns a 1M-device scenario into a memory wall. This module supplies the
//! bookkeeping for the lazy alternative:
//!
//! * [`Materialization`] — the [`SimConfig`](crate::SimConfig) knob
//!   selecting between the eager fleet (every device model lives for the
//!   whole run) and the lazy fleet (a device's model and data shard are
//!   materialized from its `ModelSpec` + deterministic per-device seed
//!   only while needed, and dropped after merge);
//! * [`DeviceRegistry`] — per-device slots holding only a device's
//!   cumulative state summary (a [`StateDict`], absent until the device
//!   first trains) plus residency flags, sharded so that slot storage for
//!   a million registered devices is allocated on demand, never up front.
//!
//! The registry is also the **instrument**: it maintains `resident` /
//! `peak_resident` / `touched` counters that the driver exports into every
//! [`RoundMetrics`](crate::RoundMetrics) row, so the memory bound of the
//! lazy fleet (peak resident ≤ sampled-per-round + O(1) for stateless-
//! device algorithms such as FedAvg/FedProx) is *enforced by tests* on the
//! counter rather than claimed from OS-level RSS readings.
//!
//! Determinism: rematerialization is bit-exact. A device's first
//! materialization runs the same seeded `ModelSpec::build` an eager fleet
//! runs at construction; a *re*-materialization rebuilds and restores the
//! stored summary via `load_state_dict`, the same snapshot→rebuild→load
//! round trip the device-parallel fleet driver already relies on (and the
//! checkpoint tests prove lossless). Lazy and eager runs of the same
//! scenario therefore produce bit-identical [`RunLog`](crate::RunLog)s —
//! the workspace equivalence suite asserts exactly that.

use fedzkt_nn::StateDict;

/// Fleet materialization strategy — a throughput/memory knob, never a
/// semantics knob: for any scenario, lazy and eager runs are bit-identical
/// (up to the [`RoundMetrics`](crate::RoundMetrics) residency gauge, which
/// reports the mode's actual memory behaviour).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Materialization {
    /// Materialize every device at construction and keep it resident for
    /// the whole run. Right for paper-scale fleets (tens of devices),
    /// where slicing shards up front is cheaper than re-subsetting per
    /// round, and for interactive use that pokes at arbitrary device
    /// models between rounds.
    #[default]
    Eager,
    /// Materialize a device only while it is needed — sampled for a
    /// round, serving as a distillation teacher, or being evaluated — and
    /// drop it back to its registry summary afterwards. Peak memory is
    /// O(resident), not O(registered): the cross-device setting's only
    /// viable mode at 10⁵–10⁶ registered devices.
    Lazy,
}

impl Materialization {
    /// Parse the scenario/CLI spelling (`"eager"` or `"lazy"`).
    ///
    /// # Errors
    /// Returns a description of the accepted forms on any other input.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "eager" => Ok(Materialization::Eager),
            "lazy" => Ok(Materialization::Lazy),
            other => Err(format!("unknown materialization \"{other}\" (use \"eager\" or \"lazy\")")),
        }
    }

    /// The canonical spelling, inverse of [`Materialization::parse`].
    pub fn as_str(&self) -> &'static str {
        match self {
            Materialization::Eager => "eager",
            Materialization::Lazy => "lazy",
        }
    }

    /// Is this the lazy mode?
    pub fn is_lazy(&self) -> bool {
        matches!(self, Materialization::Lazy)
    }
}

impl std::fmt::Display for Materialization {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One registered device's slot: its residency flag and — once the device
/// has trained at least once — the cumulative state summary it is
/// rematerialized from.
#[derive(Debug, Default)]
struct Slot {
    resident: bool,
    summary: Option<StateDict>,
}

/// Per-device slot storage plus residency accounting for a (possibly
/// enormous) registered fleet.
///
/// Storage is sharded: slots come into existence a shard at a time, the
/// first time any device in the shard is touched, so a registry over 10⁶
/// devices of which ~10³ are ever sampled allocates slot storage roughly
/// proportional to the touched set, not the registered population. The
/// shard size is an internal layout detail — every observable behaviour
/// (counters, summaries, residency) is identical for every shard size,
/// which the workspace property suite asserts.
///
/// The counters are the scale instrument the driver exports per round:
///
/// * [`resident`](DeviceRegistry::resident) — devices materialized right
///   now;
/// * [`peak_resident`](DeviceRegistry::peak_resident) — the high-water
///   mark over the whole run (monotone, so read order never matters);
/// * [`touched`](DeviceRegistry::touched) — devices ever materialized.
///
/// Misuse (double checkout, releasing a non-resident device, any
/// out-of-range id) panics: residency bugs must fail loudly in tests, not
/// skew the gauge that CI's memory-bound regression reads.
#[derive(Debug)]
pub struct DeviceRegistry {
    registered: usize,
    shard_size: usize,
    shards: Vec<Option<Box<[Slot]>>>,
    resident: usize,
    peak_resident: usize,
    touched: usize,
}

/// Default slot-shard size; at ~10³ devices sampled from 10⁶ registered,
/// this keeps demand-allocated slot storage in the low megabytes.
const DEFAULT_SHARD_SIZE: usize = 256;

impl DeviceRegistry {
    /// A registry over `registered` devices (ids `0..registered`), with
    /// the default shard size. No slot storage is allocated yet.
    ///
    /// # Panics
    /// Panics when `registered` is 0.
    pub fn new(registered: usize) -> Self {
        Self::with_shard_size(registered, DEFAULT_SHARD_SIZE)
    }

    /// A registry with an explicit slot-shard size (a layout knob exposed
    /// for the shard-count-invariance property tests; simulations use
    /// [`DeviceRegistry::new`]).
    ///
    /// # Panics
    /// Panics when `registered` or `shard_size` is 0.
    pub fn with_shard_size(registered: usize, shard_size: usize) -> Self {
        assert!(registered > 0, "a registry needs at least one device");
        assert!(shard_size > 0, "shard size must be positive");
        let shards = registered.div_ceil(shard_size);
        DeviceRegistry {
            registered,
            shard_size,
            shards: (0..shards).map(|_| None).collect(),
            resident: 0,
            peak_resident: 0,
            touched: 0,
        }
    }

    /// A registry for an eager fleet: every device is checked out at
    /// construction and stays resident for the whole run, so the gauge
    /// honestly reports the eager mode's memory shape
    /// (`resident == peak_resident == registered`).
    pub fn eager(registered: usize) -> Self {
        let mut reg = Self::new(registered);
        for k in 0..registered {
            reg.checkout(k);
        }
        reg
    }

    /// Number of registered devices.
    pub fn registered(&self) -> usize {
        self.registered
    }

    /// Devices currently materialized.
    pub fn resident(&self) -> usize {
        self.resident
    }

    /// High-water mark of [`DeviceRegistry::resident`] over the run.
    pub fn peak_resident(&self) -> usize {
        self.peak_resident
    }

    /// Devices that have ever been materialized.
    pub fn touched(&self) -> usize {
        self.touched
    }

    /// Is device `k` currently materialized?
    ///
    /// # Panics
    /// Panics when `k` is out of range.
    pub fn is_resident(&self, k: usize) -> bool {
        self.assert_in_range(k);
        self.slot(k).is_some_and(|s| s.resident)
    }

    /// Mark device `k` materialized, updating the residency counters.
    ///
    /// # Panics
    /// Panics when `k` is out of range or already resident.
    pub fn checkout(&mut self, k: usize) {
        let slot = self.slot_mut(k);
        assert!(!slot.resident, "device {k} checked out twice");
        slot.resident = true;
        self.resident += 1;
        self.touched += 1;
        self.peak_resident = self.peak_resident.max(self.resident);
    }

    /// Mark device `k` dropped.
    ///
    /// # Panics
    /// Panics when `k` is out of range or not resident.
    pub fn release(&mut self, k: usize) {
        let slot = self.slot_mut(k);
        assert!(slot.resident, "device {k} released while not resident");
        slot.resident = false;
        self.resident -= 1;
    }

    /// Store device `k`'s cumulative state summary (replacing any previous
    /// one) — the snapshot a later rematerialization restores bit-exactly.
    ///
    /// # Panics
    /// Panics when `k` is out of range.
    pub fn store_summary(&mut self, k: usize, summary: StateDict) {
        self.slot_mut(k).summary = Some(summary);
    }

    /// Device `k`'s stored summary, if it has one. `None` means the device
    /// has never trained: materialize it from its construction seed alone.
    ///
    /// # Panics
    /// Panics when `k` is out of range.
    pub fn summary(&self, k: usize) -> Option<&StateDict> {
        self.assert_in_range(k);
        self.slot(k).and_then(|s| s.summary.as_ref())
    }

    /// Remove and return device `k`'s stored summary, if any — the
    /// move-out path for rematerialization (avoids cloning model-sized
    /// state on the hot path).
    ///
    /// # Panics
    /// Panics when `k` is out of range.
    pub fn take_summary(&mut self, k: usize) -> Option<StateDict> {
        self.slot_mut(k).summary.take()
    }

    /// Every stored summary, as `(device, summary)` pairs in device order —
    /// the checkpoint export path. Only allocated shards are visited, so
    /// the cost is O(touched), not O(registered).
    pub fn summaries(&self) -> impl Iterator<Item = (usize, &StateDict)> + '_ {
        self.shards.iter().enumerate().filter_map(|(i, shard)| shard.as_ref().map(|s| (i, s))).flat_map(
            move |(i, shard)| {
                shard.iter().enumerate().filter_map(move |(j, slot)| {
                    slot.summary.as_ref().map(|sd| (i * self.shard_size + j, sd))
                })
            },
        )
    }

    /// Merge residency counters restored from a checkpoint: the peak
    /// high-water mark and the touched count carry across a restart (a
    /// resumed run must report the same gauge the uninterrupted run
    /// reports), while `resident` always reflects the *live* slots and is
    /// never overwritten.
    pub fn absorb_counters(&mut self, peak_resident: usize, touched: usize) {
        self.peak_resident = self.peak_resident.max(peak_resident);
        self.touched = self.touched.max(touched);
    }

    fn assert_in_range(&self, k: usize) {
        assert!(k < self.registered, "device {k} out of range (registered: {})", self.registered);
    }

    /// The slot for device `k`, if its shard has been allocated.
    fn slot(&self, k: usize) -> Option<&Slot> {
        self.shards[k / self.shard_size].as_ref().map(|s| &s[k % self.shard_size])
    }

    /// The slot for device `k`, allocating its shard on first touch.
    fn slot_mut(&mut self, k: usize) -> &mut Slot {
        self.assert_in_range(k);
        let shard = self.shards[k / self.shard_size].get_or_insert_with(|| {
            (0..self.shard_size).map(|_| Slot::default()).collect::<Vec<_>>().into_boxed_slice()
        });
        &mut shard[k % self.shard_size]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedzkt_tensor::Tensor;

    fn summary(v: f32) -> StateDict {
        StateDict { params: vec![Tensor::scalar(v)], buffers: Vec::new() }
    }

    #[test]
    fn counters_track_checkout_release() {
        let mut reg = DeviceRegistry::new(10);
        assert_eq!((reg.resident(), reg.peak_resident(), reg.touched()), (0, 0, 0));
        reg.checkout(3);
        reg.checkout(7);
        assert_eq!((reg.resident(), reg.peak_resident(), reg.touched()), (2, 2, 2));
        assert!(reg.is_resident(3) && reg.is_resident(7) && !reg.is_resident(0));
        reg.release(3);
        assert_eq!((reg.resident(), reg.peak_resident(), reg.touched()), (1, 2, 2));
        // Peak is a monotone high-water mark.
        reg.checkout(3);
        reg.release(3);
        reg.release(7);
        assert_eq!((reg.resident(), reg.peak_resident(), reg.touched()), (0, 2, 3));
    }

    #[test]
    fn eager_registry_is_fully_resident() {
        let reg = DeviceRegistry::eager(5);
        assert_eq!(reg.resident(), 5);
        assert_eq!(reg.peak_resident(), 5);
        assert_eq!(reg.touched(), 5);
        assert!((0..5).all(|k| reg.is_resident(k)));
    }

    #[test]
    fn summaries_store_and_take() {
        let mut reg = DeviceRegistry::new(4);
        assert!(reg.summary(2).is_none());
        reg.store_summary(2, summary(1.5));
        assert_eq!(reg.summary(2), Some(&summary(1.5)));
        reg.store_summary(2, summary(2.5));
        assert_eq!(reg.take_summary(2), Some(summary(2.5)));
        assert!(reg.summary(2).is_none());
        assert!(reg.take_summary(2).is_none());
    }

    #[test]
    fn slot_storage_is_allocated_on_demand() {
        let mut reg = DeviceRegistry::with_shard_size(1_000_000, 256);
        assert!(reg.shards.iter().all(Option::is_none), "no slots before first touch");
        reg.checkout(999_999);
        assert_eq!(reg.shards.iter().filter(|s| s.is_some()).count(), 1);
        assert_eq!(reg.resident(), 1);
    }

    #[test]
    fn summaries_iterate_in_device_order_without_touching_cold_shards() {
        let mut reg = DeviceRegistry::with_shard_size(1000, 4);
        reg.store_summary(517, summary(2.0));
        reg.store_summary(3, summary(1.0));
        reg.store_summary(999, summary(3.0));
        let allocated = reg.shards.iter().filter(|s| s.is_some()).count();
        assert_eq!(allocated, 3, "only the three touched shards exist");
        let got: Vec<(usize, f32)> =
            reg.summaries().map(|(k, sd)| (k, sd.params[0].item())).collect();
        assert_eq!(got, vec![(3, 1.0), (517, 2.0), (999, 3.0)]);
    }

    #[test]
    fn absorbed_counters_merge_monotonically() {
        let mut reg = DeviceRegistry::new(8);
        reg.checkout(0);
        reg.absorb_counters(5, 6);
        assert_eq!((reg.resident(), reg.peak_resident(), reg.touched()), (1, 5, 6));
        // Never regresses the live counters.
        reg.absorb_counters(0, 0);
        assert_eq!((reg.resident(), reg.peak_resident(), reg.touched()), (1, 5, 6));
    }

    #[test]
    #[should_panic(expected = "checked out twice")]
    fn double_checkout_panics() {
        let mut reg = DeviceRegistry::new(2);
        reg.checkout(1);
        reg.checkout(1);
    }

    #[test]
    #[should_panic(expected = "not resident")]
    fn release_without_checkout_panics() {
        DeviceRegistry::new(2).release(0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        DeviceRegistry::new(2).checkout(2);
    }

    #[test]
    fn parse_roundtrips_materialization() {
        for mode in [Materialization::Eager, Materialization::Lazy] {
            assert_eq!(Materialization::parse(mode.as_str()), Ok(mode));
        }
        assert!(Materialization::parse("ondemand").is_err());
        assert_eq!(Materialization::default(), Materialization::Eager);
        assert!(Materialization::Lazy.is_lazy());
        assert!(!Materialization::Eager.is_lazy());
    }
}
