//! Fed-ET (Cho et al., 2022) — ensemble knowledge transfer with
//! diversity-weighted consensus distillation.
//!
//! Fed-ET keeps the paper's heterogeneous-device premise but transfers
//! knowledge through a **public transfer set** and a large **server
//! model**: each round the active devices train locally and upload their
//! (small) models; the server scores a transfer subset with every uploaded
//! model, folds the logits into a consensus whose per-device weights are
//! boosted by *diversity* — a device whose predictions stray from the
//! ensemble mean carries information the mean lacks — distills the
//! consensus into the server model, and finally transfers the refreshed
//! server knowledge back into each device architecture before the
//! downlink.
//!
//! Runs under the generic [`Simulation`](crate::Simulation) driver like
//! every other algorithm in the workspace — zero protocol machinery of its
//! own. Both wire directions carry the device's own model state dict, so
//! the default [`downlink_template`](FederatedAlgorithm::downlink_template)
//! applies; the decoded uplink (not the device's bit-exact state) is what
//! the server ensembles, and the decoded downlink is what the device keeps
//! — lossy-codec error enters both sides of the transfer.
//!
//! ## Scale model
//!
//! Nothing in a Fed-ET round touches an inactive device: local training,
//! scoring, distillation and transfer all run over the active set. Under
//! [`Materialization::Lazy`] the fleet stays at O(active) resident devices
//! outside evaluation, exactly like FedMD, and lazy and eager runs are
//! bit-identical.

use crate::checkpoint::AlgoState;
use crate::registry::{DeviceRegistry, Materialization};
use crate::{
    digest_logits, train_local_fleet, DigestConfig, FederatedAlgorithm, FleetJob,
    LocalTrainConfig, RoundContext, SimConfig,
};
use fedzkt_autograd::{no_grad, Var};
use fedzkt_data::Dataset;
use fedzkt_models::ModelSpec;
use fedzkt_nn::{load_state_dict, state_dict, Module, StateDict};
use fedzkt_tensor::{seeded_rng, split_seed, Tensor};
use rand::seq::SliceRandom;

/// Hyperparameters of [`FedEt`]'s update rules. Protocol-level knobs
/// (rounds, participation, seed, threads, codec) live in [`SimConfig`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FedEtConfig {
    /// Local training epochs per round.
    pub local_epochs: usize,
    /// Mini-batch size (local training, distillation and transfer).
    pub batch_size: usize,
    /// Device learning rate.
    pub lr: f32,
    /// Public samples scored per round (the transfer subset).
    pub transfer_size: usize,
    /// Epochs of consensus distillation into the server model per round.
    pub distill_epochs: usize,
    /// Epochs of server→device knowledge transfer per round.
    pub transfer_epochs: usize,
    /// Server-model distillation learning rate.
    pub server_lr: f32,
    /// Diversity boost λ in the consensus weights `α_k ∝ n_k (1 + λ d_k)`;
    /// 0 recovers plain sample-count weighting.
    pub diversity_lambda: f32,
    /// The (large) server model the ensemble is distilled into.
    pub server_model: ModelSpec,
}

impl Default for FedEtConfig {
    fn default() -> Self {
        FedEtConfig {
            local_epochs: 1,
            batch_size: 32,
            lr: 0.01,
            transfer_size: 128,
            distill_epochs: 2,
            transfer_epochs: 2,
            server_lr: 0.01,
            diversity_lambda: 1.0,
            server_model: ModelSpec::SmallCnn { base_channels: 8 },
        }
    }
}

/// One simulated device: its architecture, and the model itself while the
/// device is materialized (`None` between rounds in a lazy fleet).
struct EtSlot {
    spec: ModelSpec,
    model: Option<Box<dyn Module>>,
}

/// Private shards, stored per the fleet's materialization mode.
enum EtData {
    Eager(Vec<Dataset>),
    Lazy { train: Dataset, index: Vec<Vec<usize>> },
}

impl EtData {
    fn shard_len(&self, k: usize) -> usize {
        match self {
            EtData::Eager(shards) => shards[k].len(),
            EtData::Lazy { index, .. } => index[k].len(),
        }
    }
}

/// A Fed-ET federation over heterogeneous on-device models, a public
/// transfer set and one server model.
pub struct FedEt {
    cfg: FedEtConfig,
    seed: u64,
    io: (usize, usize, usize),
    mode: Materialization,
    slots: Vec<EtSlot>,
    data: EtData,
    registry: DeviceRegistry,
    public: Dataset,
    server: Box<dyn Module>,
    /// Zero-sample dataset handed to transfer-only fleet jobs (their
    /// `epochs: 0` local pass is a no-op by contract).
    empty: Dataset,
    /// The round's decoded uploads, produced by `local_update` and
    /// consumed by `server_update` — intra-round scratch, never
    /// checkpointed.
    pending: Vec<(usize, StateDict)>,
}

impl FedEt {
    /// Build the federation. `public` provides the transfer set; its
    /// labels are taken modulo the private class count (only its inputs
    /// are ever scored, but the relabelling keeps the dataset well-formed
    /// for the class-count accessors). `sim` supplies the run seed and the
    /// fleet's [`Materialization`] mode.
    ///
    /// # Panics
    /// Panics when `zoo`/`shards` lengths differ or are empty, or when the
    /// public set's image geometry differs from the private one.
    pub fn new(
        zoo: &[ModelSpec],
        train: &Dataset,
        shards: &[Vec<usize>],
        public: Dataset,
        cfg: FedEtConfig,
        sim: &SimConfig,
    ) -> Self {
        assert!(!zoo.is_empty(), "need at least one device");
        assert_eq!(zoo.len(), shards.len(), "zoo/shards length mismatch");
        assert_eq!(
            (public.channels(), public.img_size()),
            (train.channels(), train.img_size()),
            "public/private image geometry mismatch"
        );
        let (channels, classes, img) = (train.channels(), train.num_classes(), train.img_size());
        let public = Dataset::new(
            public.images().clone(),
            public.labels().iter().map(|&l| l % classes).collect(),
            classes,
        );
        let (slots, data, registry) = match sim.materialization {
            Materialization::Eager => (
                zoo.iter()
                    .enumerate()
                    .map(|(i, spec)| EtSlot {
                        spec: *spec,
                        model: Some(spec.build(
                            channels,
                            classes,
                            img,
                            split_seed(sim.seed, 0xE7_0000 + i as u64),
                        )),
                    })
                    .collect::<Vec<_>>(),
                EtData::Eager(shards.iter().map(|idx| train.subset(idx)).collect()),
                DeviceRegistry::eager(zoo.len()),
            ),
            Materialization::Lazy => (
                zoo.iter().map(|spec| EtSlot { spec: *spec, model: None }).collect(),
                EtData::Lazy { train: train.clone(), index: shards.to_vec() },
                DeviceRegistry::new(zoo.len()),
            ),
        };
        let server = cfg.server_model.build(channels, classes, img, split_seed(sim.seed, 0xE7_5EED));
        FedEt {
            cfg,
            seed: sim.seed,
            io: (channels, classes, img),
            mode: sim.materialization,
            slots,
            data,
            registry,
            public,
            server,
            empty: Dataset::new(Tensor::zeros(&[0, channels, img, img]), Vec::new(), classes),
            pending: Vec::new(),
        }
    }

    /// The relabelled public transfer set.
    pub fn public(&self) -> &Dataset {
        &self.public
    }

    /// The server model the ensemble is distilled into.
    pub fn server(&self) -> &dyn Module {
        self.server.as_ref()
    }

    /// Device `k`'s materialized model.
    ///
    /// # Panics
    /// Panics when the device is not resident — a lifecycle bug, since
    /// every code path that touches a model materializes it first.
    fn model(&self, k: usize) -> &dyn Module {
        self.slots[k].model.as_deref().expect("device model must be resident here")
    }

    /// Materialize device `k` if it is not already resident (the same
    /// seeded build as the eager constructor, overlaid with the stored
    /// summary, if any).
    fn ensure_resident(&mut self, k: usize) {
        if self.slots[k].model.is_some() {
            return;
        }
        let (channels, classes, img) = self.io;
        let model = self.slots[k].spec.build(
            channels,
            classes,
            img,
            split_seed(self.seed, 0xE7_0000 + k as u64),
        );
        if let Some(summary) = self.registry.take_summary(k) {
            load_state_dict(model.as_ref(), &summary)
                .expect("registry summary matches device architecture");
        }
        self.slots[k].model = Some(model);
        self.registry.checkout(k);
    }

    /// Stage the private shards of `ids` for a lazy fleet's dispatch
    /// (empty in eager mode, where the shards are held permanently).
    fn stage_shards(&self, ids: &[usize]) -> Vec<Dataset> {
        match &self.data {
            EtData::Eager(_) => Vec::new(),
            EtData::Lazy { train, index } => {
                ids.iter().map(|&k| train.subset(&index[k])).collect()
            }
        }
    }

    /// The `i`-th staged shard of `ids` — from the permanent store in
    /// eager mode, from `staged` in lazy mode.
    fn shard<'a>(&'a self, staged: &'a [Dataset], ids: &[usize], i: usize) -> &'a Dataset {
        match &self.data {
            EtData::Eager(shards) => &shards[ids[i]],
            EtData::Lazy { .. } => &staged[i],
        }
    }

    /// Size of the round's transfer subset.
    fn transfer_len(&self) -> usize {
        self.cfg.transfer_size.min(self.public.len())
    }
}

impl FederatedAlgorithm for FedEt {
    fn devices(&self) -> usize {
        self.slots.len()
    }

    /// Device phase: local cross-entropy training on the fleet, then each
    /// active device uploads its model. The device keeps its bit-exact
    /// trained state; the server receives the wire (decoded) copy.
    fn local_update(&mut self, round: usize, active: &[usize], ctx: &mut RoundContext) -> f32 {
        for &k in active {
            self.ensure_resident(k);
        }
        let staged = self.stage_shards(active);
        let jobs: Vec<FleetJob> = active
            .iter()
            .enumerate()
            .map(|(i, &k)| FleetJob {
                spec: self.slots[k].spec,
                snapshot: state_dict(self.model(k)),
                data: self.shard(&staged, active, i),
                cfg: LocalTrainConfig {
                    epochs: self.cfg.local_epochs,
                    batch_size: self.cfg.batch_size,
                    lr: self.cfg.lr,
                    momentum: 0.9,
                    seed: split_seed(self.seed, 0xE7_1000 + (round * 31 + k) as u64),
                    ..Default::default()
                },
                pretrain: None,
                digest: None,
                rebuild_seed: split_seed(self.seed, 0xE7_2000 + (round * 31 + k) as u64),
            })
            .collect();
        let results = train_local_fleet(&jobs, self.io, ctx.threads());
        drop(jobs);
        drop(staged);
        let mut loss_sum = 0.0f32;
        self.pending.clear();
        for (&k, (loss, sd)) in active.iter().zip(results) {
            loss_sum += loss;
            let (decoded, wire) = ctx.through_wire(&sd);
            ctx.comm.record_upload(k, wire);
            load_state_dict(self.model(k), &sd)
                .expect("fleet result matches device architecture");
            self.pending.push((k, decoded));
        }
        loss_sum / active.len().max(1) as f32
    }

    /// Server phase: score the round's transfer subset with every uploaded
    /// model, fold the logits into the diversity-weighted consensus,
    /// distill it into the server model, transfer the refreshed knowledge
    /// back into each device architecture, and downlink the result.
    fn server_update(&mut self, round: usize, active: &[usize], ctx: &mut RoundContext) {
        debug_assert_eq!(self.pending.len(), active.len());
        let uploads = std::mem::take(&mut self.pending);
        let (channels, classes, img) = self.io;

        // 1. Sample the transfer subset of the public data.
        let mut rng = seeded_rng(split_seed(self.seed, 0xE7_3000 + round as u64));
        let mut indices: Vec<usize> = (0..self.public.len()).collect();
        indices.shuffle(&mut rng);
        indices.truncate(self.transfer_len());
        let (align_x, _) = self.public.batch(&indices);
        let align_var = Var::constant(align_x.clone());

        // 2. Ensemble logits, from what the wire delivered: each uploaded
        // (decoded) state is loaded into a scratch rebuild and scored.
        let scores: Vec<Tensor> = uploads
            .iter()
            .map(|(k, sd)| {
                let scratch = self.slots[*k].spec.build(
                    channels,
                    classes,
                    img,
                    split_seed(self.seed, 0xE7_7000 + (round * 31 + k) as u64),
                );
                load_state_dict(scratch.as_ref(), sd)
                    .expect("uploaded state matches device architecture");
                scratch.set_training(false);
                no_grad(|| scratch.forward(&align_var).value_clone())
            })
            .collect();

        // 3. Diversity-weighted consensus, `α_k ∝ n_k (1 + λ d_k)` where
        // `d_k` is device k's mean absolute deviation from the uniform
        // ensemble mean — a device that disagrees with the crowd carries
        // information the crowd lacks (arXiv 2204.12703's weighted
        // consensus, over logits).
        let mut mean = scores[0].clone();
        for s in &scores[1..] {
            mean.add_scaled_inplace(s, 1.0).expect("ensemble logit shapes agree");
        }
        let mean = mean.mul_scalar(1.0 / scores.len() as f32);
        let weights: Vec<f32> = uploads
            .iter()
            .zip(&scores)
            .map(|((k, _), s)| {
                let deviation: f32 =
                    s.data().iter().zip(mean.data()).map(|(a, b)| (a - b).abs()).sum();
                let d = deviation / s.data().len().max(1) as f32;
                self.data.shard_len(*k).max(1) as f32 * (1.0 + self.cfg.diversity_lambda * d)
            })
            .collect();
        let total: f32 = weights.iter().sum();
        let mut consensus = Tensor::zeros(scores[0].shape());
        for (s, w) in scores.iter().zip(&weights) {
            consensus.add_scaled_inplace(s, w / total).expect("ensemble logit shapes agree");
        }

        // 4. Distill the consensus into the server model.
        digest_logits(
            self.server.as_ref(),
            &DigestConfig {
                inputs: &align_x,
                targets: &consensus,
                epochs: self.cfg.distill_epochs,
                batch_size: self.cfg.batch_size,
                lr: self.cfg.server_lr,
                seed: split_seed(self.seed, 0xE7_4000 + round as u64),
            },
        );

        // 5. The refreshed server knowledge on the transfer subset.
        self.server.set_training(false);
        let teacher = no_grad(|| self.server.forward(&align_var).value_clone());
        self.server.set_training(true);

        // 6. Transfer back into each device architecture (on the fleet —
        // a digest-only job: the `epochs: 0` local pass is a no-op), then
        // downlink; the device keeps the decoded copy.
        let (ids, states): (Vec<usize>, Vec<StateDict>) = uploads.into_iter().unzip();
        let jobs: Vec<FleetJob> = ids
            .iter()
            .zip(states)
            .map(|(&k, snapshot)| FleetJob {
                spec: self.slots[k].spec,
                snapshot,
                data: &self.empty,
                cfg: LocalTrainConfig { epochs: 0, ..Default::default() },
                pretrain: None,
                digest: Some(DigestConfig {
                    inputs: &align_x,
                    targets: &teacher,
                    epochs: self.cfg.transfer_epochs,
                    batch_size: self.cfg.batch_size,
                    // Raw-logit ℓ1 gradients dwarf cross-entropy's; the
                    // fraction of the base rate is the workspace's digest
                    // idiom (see FedMD).
                    lr: self.cfg.lr * 0.2,
                    seed: split_seed(self.seed, 0xE7_5000 + (round * 31 + k) as u64),
                }),
                rebuild_seed: split_seed(self.seed, 0xE7_6000 + (round * 31 + k) as u64),
            })
            .collect();
        let results = train_local_fleet(&jobs, self.io, ctx.threads());
        drop(jobs);
        for (&k, (_, sd)) in ids.iter().zip(results) {
            let (decoded, wire) = ctx.through_wire(&sd);
            ctx.comm.record_download(k, wire);
            load_state_dict(self.model(k), &decoded)
                .expect("transfer result matches device architecture");
        }
    }

    fn device_model(&self, k: usize) -> &dyn Module {
        self.model(k)
    }

    fn global_model(&self) -> Option<&dyn Module> {
        Some(self.server.as_ref())
    }

    /// The O(|w_k|) claim: device `k` only ever exchanges its own model,
    /// in both directions. (A non-resident device answers from its
    /// summary, or from a fresh seeded build if it never trained — shapes
    /// are what matter here.)
    fn payload_template(&self, k: usize) -> StateDict {
        if let Some(model) = &self.slots[k].model {
            return state_dict(model.as_ref());
        }
        if let Some(summary) = self.registry.summary(k) {
            return summary.clone();
        }
        let (channels, classes, img) = self.io;
        let model = self.slots[k].spec.build(
            channels,
            classes,
            img,
            split_seed(self.seed, 0xE7_0000 + k as u64),
        );
        state_dict(model.as_ref())
    }

    fn local_samples(&self, k: usize) -> usize {
        self.cfg.local_epochs * self.data.shard_len(k)
    }

    fn construction_seed(&self) -> Option<u64> {
        Some(self.seed)
    }

    fn registry(&self) -> Option<&DeviceRegistry> {
        Some(&self.registry)
    }

    fn prepare_eval(&mut self) {
        for k in 0..self.slots.len() {
            self.ensure_resident(k);
        }
    }

    fn end_round(&mut self, _round: usize) {
        if self.mode.is_lazy() {
            for k in 0..self.slots.len() {
                if let Some(model) = self.slots[k].model.take() {
                    self.registry.store_summary(k, state_dict(model.as_ref()));
                    self.registry.release(k);
                }
            }
        }
    }

    /// What Fed-ET carries across rounds: every trained device model
    /// (resident or summarized), the server model, and the registry's
    /// monotone counters. `pending` is intra-round scratch; the transfer
    /// subset and all RNG streams are pure functions of `(seed, round)`.
    fn save_state(&self) -> AlgoState {
        let mut state = AlgoState::new();
        for (k, slot) in self.slots.iter().enumerate() {
            if let Some(model) = &slot.model {
                state.put_dict(format!("device_{k}"), &state_dict(model.as_ref()));
            }
        }
        for (k, summary) in self.registry.summaries() {
            state.put_dict(format!("device_{k}"), summary);
        }
        state.put_dict("server", &state_dict(self.server.as_ref()));
        state.put_words(
            "registry",
            vec![self.registry.peak_resident() as u64, self.registry.touched() as u64],
        );
        state
    }

    fn load_state(&mut self, state: &AlgoState) -> Result<(), String> {
        for k in 0..self.slots.len() {
            let name = format!("device_{k}");
            if !state.has_blob(&name) {
                continue; // never trained: rematerializes from its seed
            }
            let sd = state.dict(&name)?;
            match self.mode {
                Materialization::Eager => load_state_dict(self.model(k), &sd)
                    .map_err(|e| format!("device {k}: {e}"))?,
                Materialization::Lazy => self.registry.store_summary(k, sd),
            }
        }
        let server = state.dict("server")?;
        load_state_dict(self.server.as_ref(), &server).map_err(|e| format!("server: {e}"))?;
        let reg = state.words("registry")?;
        if reg.len() != 2 {
            return Err("registry counters must be [peak_resident, touched]".into());
        }
        self.registry.absorb_counters(reg[0] as usize, reg[1] as usize);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CodecSpec, PayloadCodec, SimCheckpoint, Simulation};
    use fedzkt_data::{DataFamily, Partition, SynthConfig};

    fn setup(sim: SimConfig) -> Simulation<FedEt> {
        let (train, test) = SynthConfig {
            family: DataFamily::Cifar10Like,
            img: 8,
            train_n: 96,
            test_n: 48,
            classes: 4,
            seed: 3,
            ..Default::default()
        }
        .generate();
        let (public, _) = SynthConfig {
            family: DataFamily::Cifar100Like,
            img: 8,
            train_n: 64,
            test_n: 8,
            classes: 8,
            seed: 9,
            ..Default::default()
        }
        .generate();
        let shards = Partition::Iid.split(train.labels(), 4, 3, 5).unwrap();
        let zoo = vec![
            ModelSpec::Mlp { hidden: 16 },
            ModelSpec::SmallCnn { base_channels: 2 },
            ModelSpec::LeNet { scale: 0.5, deep: false },
        ];
        let fed = FedEt::new(
            &zoo,
            &train,
            &shards,
            public,
            FedEtConfig {
                local_epochs: 2,
                batch_size: 16,
                lr: 0.05,
                transfer_size: 32,
                distill_epochs: 1,
                transfer_epochs: 1,
                server_lr: 0.02,
                diversity_lambda: 1.0,
                server_model: ModelSpec::SmallCnn { base_channels: 4 },
            },
            &sim,
        );
        Simulation::builder(fed, test, sim).build()
    }

    fn default_sim() -> SimConfig {
        SimConfig { rounds: 2, seed: 1, ..Default::default() }
    }

    #[test]
    fn fedet_learns_above_chance() {
        let mut sim = setup(default_sim());
        let log = sim.run();
        assert_eq!(log.rounds.len(), 2);
        assert!(log.final_accuracy() > 0.3, "accuracy {}", log.final_accuracy());
        assert!(log.rounds[1].global_accuracy.expect("server model evaluated") > 0.0);
    }

    #[test]
    fn communication_is_model_sized_in_both_directions() {
        let mut sim = setup(default_sim());
        let metrics = sim.round(0);
        let expected: u64 = (0..3)
            .map(|k| CodecSpec::Raw.wire_bytes(&sim.algorithm().payload_template(k)) as u64)
            .sum();
        assert_eq!(metrics.upload_bytes, expected);
        assert_eq!(metrics.download_bytes, expected, "both directions carry the device model");
    }

    #[test]
    fn lossy_codec_error_flows_into_training() {
        // The same seed under Raw vs Q8 must diverge: the server ensembles
        // the decoded uploads and the devices keep the decoded downlink.
        let run = |codec: CodecSpec| {
            let mut sim = setup(SimConfig { codec, ..default_sim() });
            sim.round(0);
            state_dict(sim.algorithm().device_model(0))
        };
        assert_ne!(run(CodecSpec::Raw), run(CodecSpec::QuantQ8));
    }

    #[test]
    fn transfer_moves_devices_toward_the_server_view() {
        // After a round, every active device must have changed state (local
        // training + transfer both ran).
        let mut sim = setup(default_sim());
        let before: Vec<StateDict> =
            (0..3).map(|k| state_dict(sim.algorithm().device_model(k))).collect();
        sim.round(0);
        for (k, b) in before.iter().enumerate() {
            assert_ne!(&state_dict(sim.algorithm().device_model(k)), b, "device {k}");
        }
    }

    #[test]
    fn lazy_run_is_bit_identical_to_eager() {
        let run = |mode: Materialization| {
            let mut sim = setup(SimConfig {
                rounds: 2,
                participation: 0.67,
                seed: 1,
                materialization: mode,
                ..Default::default()
            });
            sim.run().to_json()
        };
        let mut eager = run(Materialization::Eager);
        let mut lazy = run(Materialization::Lazy);
        for log in [&mut eager, &mut lazy] {
            *log = log
                .split("\"peak_resident_devices\":")
                .map(|part| match part.find('}') {
                    Some(i) => &part[i..],
                    None => part,
                })
                .collect();
        }
        assert_eq!(eager, lazy, "lazy Fed-ET diverged from eager");
    }

    #[test]
    fn checkpoint_resume_matches_the_uninterrupted_run_bit_for_bit() {
        for mode in [Materialization::Eager, Materialization::Lazy] {
            let sim_cfg = SimConfig {
                rounds: 2,
                participation: 0.67,
                seed: 1,
                materialization: mode,
                ..Default::default()
            };
            let reference = setup(sim_cfg).run().clone();
            let mut first = setup(sim_cfg);
            first.round(0);
            let ck = SimCheckpoint::from_json(&first.checkpoint().to_json()).unwrap();
            drop(first);
            let mut resumed = setup(sim_cfg);
            resumed.resume_from(&ck).expect("resume");
            let log = resumed.run().clone();
            assert_eq!(log.to_json(), reference.to_json(), "mode {mode:?}");
        }
    }

    #[test]
    fn lazy_fleet_stays_at_the_active_count_without_eval() {
        let mut sim = setup(SimConfig {
            rounds: 2,
            participation: 0.67,
            seed: 1,
            eval_every: 0,
            materialization: Materialization::Lazy,
            ..Default::default()
        });
        sim.round(0);
        let reg = sim.algorithm().registry().expect("fedet exposes its registry");
        assert_eq!(reg.resident(), 0);
        assert_eq!(reg.peak_resident(), 2, "eval off → peak stays at the active count");
    }
}
