//! Simulated time with heterogeneous device resources.
//!
//! The paper motivates FedZKT with MCU-class devices whose compute and
//! memory are orders of magnitude below a smartphone's. The simulation
//! models per-device throughput and link speeds so experiments can report
//! *simulated* round times alongside accuracy — e.g. showing that FedZKT
//! rounds are bounded by local SGD on the slowest active device, not by
//! the server-side distillation.

use fedzkt_tensor::{seeded_rng, split_seed, standard_normal};
use serde::{Deserialize, Serialize};

/// Compute and link capabilities of one simulated device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceResources {
    /// Local-training throughput (samples/second).
    pub compute_samples_per_sec: f32,
    /// Uplink bandwidth (bytes/second).
    pub uplink_bytes_per_sec: f32,
    /// Downlink bandwidth (bytes/second).
    pub downlink_bytes_per_sec: f32,
}

impl DeviceResources {
    /// A nominal smartphone-class device.
    pub fn smartphone() -> Self {
        DeviceResources {
            compute_samples_per_sec: 500.0,
            uplink_bytes_per_sec: 1e6,
            downlink_bytes_per_sec: 4e6,
        }
    }

    /// A nominal MCU/wearable-class device (≈100× less compute, slow
    /// links) — the resource-constrained participant FedZKT targets.
    pub fn microcontroller() -> Self {
        DeviceResources {
            compute_samples_per_sec: 5.0,
            uplink_bytes_per_sec: 2e4,
            downlink_bytes_per_sec: 5e4,
        }
    }

    /// A log-normally heterogeneous population between MCU and smartphone
    /// class, deterministic in `seed`.
    pub fn heterogeneous_population(devices: usize, seed: u64) -> Vec<DeviceResources> {
        (0..devices)
            .map(|d| {
                let mut rng = seeded_rng(split_seed(seed, d as u64));
                let z = standard_normal(&mut rng);
                // Log-uniform-ish spread over ~2 orders of magnitude.
                let scale = (z * 1.1).exp();
                DeviceResources {
                    compute_samples_per_sec: (50.0 * scale).clamp(2.0, 2000.0),
                    uplink_bytes_per_sec: (2e5 * scale).clamp(1e4, 4e6),
                    downlink_bytes_per_sec: (8e5 * scale).clamp(4e4, 1.6e7),
                }
            })
            .collect()
    }

    /// Seconds to locally process `samples` training samples.
    pub fn compute_time(&self, samples: usize) -> f64 {
        samples as f64 / self.compute_samples_per_sec as f64
    }

    /// Seconds to upload `bytes`.
    pub fn upload_time(&self, bytes: usize) -> f64 {
        bytes as f64 / self.uplink_bytes_per_sec as f64
    }

    /// Seconds to download `bytes`.
    pub fn download_time(&self, bytes: usize) -> f64 {
        bytes as f64 / self.downlink_bytes_per_sec as f64
    }
}

/// One device's participation in a synchronous round, as the clock sees
/// it: how far through its local work the device got, and how its links
/// are scaled this round (the churn model's time-varying bandwidth).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundParticipant {
    /// Device index.
    pub device: usize,
    /// Fraction of the local compute completed before leaving the round:
    /// `1.0` for a device that finished, `< 1.0` for a mid-round dropout.
    pub completion: f64,
    /// Multiplier on both link rates this round; `1.0` leaves the
    /// device's nominal links untouched.
    pub link_scale: f64,
}

impl RoundParticipant {
    /// A device that completes the whole round over its nominal links.
    pub fn full(device: usize) -> Self {
        RoundParticipant { device, completion: 1.0, link_scale: 1.0 }
    }

    /// Did the device finish its local work (and therefore upload)?
    pub fn completed(&self) -> bool {
        self.completion >= 1.0
    }
}

/// Virtual clock advancing by synchronous federated rounds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimClock {
    devices: Vec<DeviceResources>,
    now_s: f64,
}

impl SimClock {
    /// Create a clock over a device population.
    pub fn new(devices: Vec<DeviceResources>) -> Self {
        SimClock { devices, now_s: 0.0 }
    }

    /// Current simulated time in seconds.
    pub fn now(&self) -> f64 {
        self.now_s
    }

    /// Restore the clock to a checkpointed instant (the resume path; a
    /// live run never rewinds its own clock).
    pub fn set_now(&mut self, now_s: f64) {
        self.now_s = now_s;
    }

    /// Resources of device `d`.
    ///
    /// # Panics
    /// Panics when `d` is out of range.
    pub fn device(&self, d: usize) -> &DeviceResources {
        &self.devices[d]
    }

    /// Duration of one synchronous round: the slowest participant's
    /// elapsed time, plus the server-side time. Advances the clock and
    /// returns the duration.
    ///
    /// Partial-round accounting is explicit per participant: every
    /// participant is charged its download and `completion × compute`,
    /// but **only a device that completed uploads** — a mid-round dropout
    /// (`completion < 1`) can never be charged a full round of compute,
    /// nor any uplink time. Link scales divide the nominal link rates, so
    /// a device on a degraded link pays proportionally longer transfers.
    ///
    /// The three per-device quantities are closures of the device index
    /// so heterogeneous payloads (each device ships its *own* model) and
    /// heterogeneous workloads (shard sizes differ) are both expressible.
    ///
    /// # Panics
    /// Panics when a participant's `link_scale` is not positive or its
    /// `completion` is outside `[0, 1]`.
    pub fn advance_round(
        &mut self,
        participants: &[RoundParticipant],
        samples_per_device: &dyn Fn(usize) -> usize,
        down_bytes_per_device: &dyn Fn(usize) -> usize,
        up_bytes_per_device: &dyn Fn(usize) -> usize,
        server_seconds: f64,
    ) -> f64 {
        let device_time = participants
            .iter()
            .map(|p| {
                assert!(p.link_scale > 0.0, "link scale must be positive");
                assert!((0.0..=1.0).contains(&p.completion), "completion must be in [0, 1]");
                let r = &self.devices[p.device];
                let down = r.download_time(down_bytes_per_device(p.device)) / p.link_scale;
                let compute = r.compute_time(samples_per_device(p.device)) * p.completion;
                let up = if p.completed() {
                    r.upload_time(up_bytes_per_device(p.device)) / p.link_scale
                } else {
                    0.0
                };
                down + compute + up
            })
            .fold(0.0f64, f64::max);
        let dt = device_time + server_seconds;
        self.now_s += dt;
        dt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mcu_is_much_slower_than_smartphone() {
        let mcu = DeviceResources::microcontroller();
        let phone = DeviceResources::smartphone();
        assert!(mcu.compute_time(100) > 50.0 * phone.compute_time(100));
    }

    #[test]
    fn population_is_heterogeneous_and_deterministic() {
        let a = DeviceResources::heterogeneous_population(8, 1);
        let b = DeviceResources::heterogeneous_population(8, 1);
        assert_eq!(a, b);
        let speeds: Vec<f32> = a.iter().map(|r| r.compute_samples_per_sec).collect();
        let min = speeds.iter().copied().fold(f32::INFINITY, f32::min);
        let max = speeds.iter().copied().fold(0.0f32, f32::max);
        assert!(max / min > 2.0, "population not heterogeneous: {speeds:?}");
    }

    #[test]
    fn slowest_active_device_bounds_the_round_time() {
        let pop = vec![DeviceResources::smartphone(), DeviceResources::microcontroller()];
        let mut clock = SimClock::new(pop);
        // Only the fast device active.
        let fast =
            clock.advance_round(&[RoundParticipant::full(0)], &|_| 100, &|_| 1000, &|_| 1000, 0.5);
        // Both active: the MCU dominates.
        let both = clock.advance_round(
            &[RoundParticipant::full(0), RoundParticipant::full(1)],
            &|_| 100,
            &|_| 1000,
            &|_| 1000,
            0.5,
        );
        assert!(both > 10.0 * fast, "fast {fast}, both {both}");
        assert!((clock.now() - (fast + both)).abs() < 1e-9);
    }

    /// Satellite bugfix pin: partial-round accounting. A dropout is
    /// charged its download and the completed fraction of its compute —
    /// never the full round, and never any upload.
    #[test]
    fn dropout_charges_partial_compute_and_no_upload() {
        // 10 samples/s compute, 100 B/s up, 200 B/s down: with 50
        // samples, 400 B down, 300 B up the full round is exactly
        // 2 + 5 + 3 = 10 s.
        let r = DeviceResources {
            compute_samples_per_sec: 10.0,
            uplink_bytes_per_sec: 100.0,
            downlink_bytes_per_sec: 200.0,
        };
        let mut clock = SimClock::new(vec![r]);
        let full =
            clock.advance_round(&[RoundParticipant::full(0)], &|_| 50, &|_| 400, &|_| 300, 0.0);
        assert_eq!(full, 10.0);
        // Dropping out at 40% of compute: 2 + 0.4·5 = 4 s exactly; the
        // 3 s upload never happens.
        let dropped = clock.advance_round(
            &[RoundParticipant { device: 0, completion: 0.4, link_scale: 1.0 }],
            &|_| 50,
            &|_| 400,
            &|_| 300,
            0.0,
        );
        assert_eq!(dropped, 4.0);
        // Even at completion → 1 a dropout stays strictly under the full
        // round by the upload leg.
        let near = clock.advance_round(
            &[RoundParticipant { device: 0, completion: 0.999, link_scale: 1.0 }],
            &|_| 50,
            &|_| 400,
            &|_| 300,
            0.0,
        );
        assert!(near < full - 2.9, "upload must never be charged to a dropout");
        // A halved link doubles both transfer legs and only them:
        // 4 + 5 + 6 = 15 s.
        let throttled = clock.advance_round(
            &[RoundParticipant { device: 0, completion: 1.0, link_scale: 0.5 }],
            &|_| 50,
            &|_| 400,
            &|_| 300,
            0.0,
        );
        assert_eq!(throttled, 15.0);
    }

    #[test]
    fn clock_restores_to_a_checkpointed_instant() {
        let mut clock = SimClock::new(vec![DeviceResources::smartphone()]);
        clock.advance_round(&[RoundParticipant::full(0)], &|_| 10, &|_| 10, &|_| 10, 0.0);
        let t = clock.now();
        let mut fresh = SimClock::new(vec![DeviceResources::smartphone()]);
        fresh.set_now(t);
        assert_eq!(fresh, clock);
    }
}
