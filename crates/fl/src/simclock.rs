//! Simulated time with heterogeneous device resources.
//!
//! The paper motivates FedZKT with MCU-class devices whose compute and
//! memory are orders of magnitude below a smartphone's. The simulation
//! models per-device throughput and link speeds so experiments can report
//! *simulated* round times alongside accuracy — e.g. showing that FedZKT
//! rounds are bounded by local SGD on the slowest active device, not by
//! the server-side distillation.

use fedzkt_tensor::{seeded_rng, split_seed, standard_normal};
use serde::{Deserialize, Serialize};

/// Compute and link capabilities of one simulated device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceResources {
    /// Local-training throughput (samples/second).
    pub compute_samples_per_sec: f32,
    /// Uplink bandwidth (bytes/second).
    pub uplink_bytes_per_sec: f32,
    /// Downlink bandwidth (bytes/second).
    pub downlink_bytes_per_sec: f32,
}

impl DeviceResources {
    /// A nominal smartphone-class device.
    pub fn smartphone() -> Self {
        DeviceResources {
            compute_samples_per_sec: 500.0,
            uplink_bytes_per_sec: 1e6,
            downlink_bytes_per_sec: 4e6,
        }
    }

    /// A nominal MCU/wearable-class device (≈100× less compute, slow
    /// links) — the resource-constrained participant FedZKT targets.
    pub fn microcontroller() -> Self {
        DeviceResources {
            compute_samples_per_sec: 5.0,
            uplink_bytes_per_sec: 2e4,
            downlink_bytes_per_sec: 5e4,
        }
    }

    /// A log-normally heterogeneous population between MCU and smartphone
    /// class, deterministic in `seed`.
    pub fn heterogeneous_population(devices: usize, seed: u64) -> Vec<DeviceResources> {
        (0..devices)
            .map(|d| {
                let mut rng = seeded_rng(split_seed(seed, d as u64));
                let z = standard_normal(&mut rng);
                // Log-uniform-ish spread over ~2 orders of magnitude.
                let scale = (z * 1.1).exp();
                DeviceResources {
                    compute_samples_per_sec: (50.0 * scale).clamp(2.0, 2000.0),
                    uplink_bytes_per_sec: (2e5 * scale).clamp(1e4, 4e6),
                    downlink_bytes_per_sec: (8e5 * scale).clamp(4e4, 1.6e7),
                }
            })
            .collect()
    }

    /// Seconds to locally process `samples` training samples.
    pub fn compute_time(&self, samples: usize) -> f64 {
        samples as f64 / self.compute_samples_per_sec as f64
    }

    /// Seconds to upload `bytes`.
    pub fn upload_time(&self, bytes: usize) -> f64 {
        bytes as f64 / self.uplink_bytes_per_sec as f64
    }

    /// Seconds to download `bytes`.
    pub fn download_time(&self, bytes: usize) -> f64 {
        bytes as f64 / self.downlink_bytes_per_sec as f64
    }
}

/// Virtual clock advancing by synchronous federated rounds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimClock {
    devices: Vec<DeviceResources>,
    now_s: f64,
}

impl SimClock {
    /// Create a clock over a device population.
    pub fn new(devices: Vec<DeviceResources>) -> Self {
        SimClock { devices, now_s: 0.0 }
    }

    /// Current simulated time in seconds.
    pub fn now(&self) -> f64 {
        self.now_s
    }

    /// Resources of device `d`.
    ///
    /// # Panics
    /// Panics when `d` is out of range.
    pub fn device(&self, d: usize) -> &DeviceResources {
        &self.devices[d]
    }

    /// Duration of one synchronous round: the slowest active device's
    /// `download + compute + upload`, plus the server-side time. Advances
    /// the clock and returns the duration.
    ///
    /// All three per-device quantities are closures of the device index so
    /// heterogeneous payloads (each device ships its *own* model) and
    /// heterogeneous workloads (shard sizes differ) are both expressible.
    pub fn advance_round(
        &mut self,
        active: &[usize],
        samples_per_device: &dyn Fn(usize) -> usize,
        down_bytes_per_device: &dyn Fn(usize) -> usize,
        up_bytes_per_device: &dyn Fn(usize) -> usize,
        server_seconds: f64,
    ) -> f64 {
        let device_time = active
            .iter()
            .map(|&d| {
                let r = &self.devices[d];
                r.download_time(down_bytes_per_device(d))
                    + r.compute_time(samples_per_device(d))
                    + r.upload_time(up_bytes_per_device(d))
            })
            .fold(0.0f64, f64::max);
        let dt = device_time + server_seconds;
        self.now_s += dt;
        dt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mcu_is_much_slower_than_smartphone() {
        let mcu = DeviceResources::microcontroller();
        let phone = DeviceResources::smartphone();
        assert!(mcu.compute_time(100) > 50.0 * phone.compute_time(100));
    }

    #[test]
    fn population_is_heterogeneous_and_deterministic() {
        let a = DeviceResources::heterogeneous_population(8, 1);
        let b = DeviceResources::heterogeneous_population(8, 1);
        assert_eq!(a, b);
        let speeds: Vec<f32> = a.iter().map(|r| r.compute_samples_per_sec).collect();
        let min = speeds.iter().copied().fold(f32::INFINITY, f32::min);
        let max = speeds.iter().copied().fold(0.0f32, f32::max);
        assert!(max / min > 2.0, "population not heterogeneous: {speeds:?}");
    }

    #[test]
    fn slowest_active_device_bounds_the_round_time() {
        let pop = vec![DeviceResources::smartphone(), DeviceResources::microcontroller()];
        let mut clock = SimClock::new(pop);
        // Only the fast device active.
        let fast = clock.advance_round(&[0], &|_| 100, &|_| 1000, &|_| 1000, 0.5);
        // Both active: the MCU dominates.
        let both = clock.advance_round(&[0, 1], &|_| 100, &|_| 1000, &|_| 1000, 0.5);
        assert!(both > 10.0 * fast, "fast {fast}, both {both}");
        assert!((clock.now() - (fast + both)).abs() < 1e-9);
    }
}
