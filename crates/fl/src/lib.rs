//! # fedzkt-fl
//!
//! Federated-learning simulation substrate: device/round bookkeeping,
//! participation sampling (straggler modelling), local training, accuracy
//! evaluation, communication accounting, a simulated wall clock with
//! heterogeneous device resources, per-round metrics/CSV export, and two
//! reference algorithms with homogeneous models — **FedAvg** (McMahan et
//! al.) and **FedProx** (ℓ2-proximal local objective) — used both as
//! substrate validation and as conceptual baselines for the FedZKT
//! comparison in `fedzkt-core`.
//!
//! ## Example
//!
//! ```
//! use fedzkt_data::{DataFamily, Partition, SynthConfig};
//! use fedzkt_fl::{FedAvg, FedAvgConfig};
//! use fedzkt_models::ModelSpec;
//!
//! let (train, test) = SynthConfig {
//!     family: DataFamily::MnistLike, img: 8, train_n: 64, test_n: 32, seed: 1,
//!     ..Default::default()
//! }.generate();
//! let shards = Partition::Iid.split(train.labels(), 10, 2, 3).unwrap();
//! let mut fed = FedAvg::new(
//!     ModelSpec::Mlp { hidden: 16 },
//!     &train, &shards, test,
//!     FedAvgConfig { rounds: 1, local_epochs: 1, ..Default::default() },
//! );
//! let log = fed.run();
//! assert_eq!(log.rounds.len(), 1);
//! ```

#![warn(missing_docs)]

mod comm;
mod eval;
mod fedavg;
mod metrics;
mod participation;
mod simclock;
mod training;

pub use comm::CommTracker;
pub use eval::{accuracy, evaluate};
pub use fedavg::{FedAvg, FedAvgConfig};
pub use metrics::{RoundMetrics, RunLog};
pub use participation::ParticipationSampler;
pub use simclock::{DeviceResources, SimClock};
pub use training::{train_local, train_local_fleet, FleetJob, LocalTrainConfig};
