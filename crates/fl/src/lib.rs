//! # fedzkt-fl
//!
//! Federated-learning simulation substrate, built around one generic
//! driver:
//!
//! * [`Simulation`] — the round loop shared by **every** algorithm in the
//!   workspace: participation sampling (straggler modelling), local
//!   training, accuracy evaluation with a configurable cadence,
//!   communication accounting, a simulated wall clock over heterogeneous
//!   [`DeviceResources`], and per-round metrics with CSV/JSON export;
//! * [`FederatedAlgorithm`] — the trait an algorithm implements to run
//!   under the driver: a device-side phase, a server-side phase, and
//!   accessors for its evaluable models and per-device payload shapes;
//! * [`codec`] — the wire-format payload codecs ([`PayloadCodec`]):
//!   every transmitted payload is pushed through the run's [`CodecSpec`]
//!   (raw f32, int8/int4 quantization, top-k sparsification), so the
//!   accounted traffic is the *encoded* size and lossy-decode error flows
//!   into training;
//! * [`registry`] — the lazy, sharded [`DeviceRegistry`] behind
//!   cross-device scale: under [`Materialization::Lazy`] a device is
//!   materialized from its spec + deterministic per-device seed only while
//!   needed and dropped back to a state summary afterwards, with
//!   resident/peak counters exported into every
//!   [`RoundMetrics`] row (lazy and eager runs are bit-identical);
//! * [`churn`] — seeded, deterministic fleet dynamics ([`ChurnSpec`] /
//!   [`ChurnProcess`]): device arrival/departure, per-device availability
//!   schedules, mid-round dropout and time-varying link bandwidth, all
//!   pure functions of `(spec, device, round)` so availability timelines
//!   survive resharding and restarts unchanged;
//! * [`checkpoint`] — versioned whole-simulation snapshots
//!   ([`SimCheckpoint`]): `RunLog`, RNG cursors, round index, registry
//!   summaries and clock serialized so that kill-at-round-k + resume
//!   reproduces the uninterrupted `RunLog` bit for bit;
//! * [`FedAvg`] — FedAvg (McMahan et al.) and FedProx (ℓ2-proximal local
//!   objective) over homogeneous models, used both as substrate validation
//!   and as conceptual baselines for the FedZKT comparison in
//!   `fedzkt-core` (which contributes `FedZkt` and `FedMd` as further
//!   [`FederatedAlgorithm`] implementations);
//! * [`FedEt`] — Fed-ET (Cho et al.): device-ensemble knowledge transfer
//!   onto one large server model through diversity-weighted consensus
//!   distillation on a public transfer set;
//! * [`FedGkt`] — FedGKT (He et al.): split training whose wire payloads
//!   are *per-sample feature/logit bundles* rather than model state —
//!   the algorithm that exercises the named-tensor-bundle payload
//!   contract hardest.
//!
//! ## Writing a new algorithm
//!
//! Implement [`FederatedAlgorithm`]: put device-side work (local SGD,
//! logit scoring, …) in `local_update`, server-side aggregation in
//! `server_update`, push every transmitted payload through
//! [`RoundContext::through_wire`] (recording the returned wire size into
//! the tracker, and handing the *decoded* state to the receiving side),
//! and keep inactive devices untouched. The driver then gives you
//! stragglers, wire-format codecs, comm accounting, simulated time,
//! evaluation cadence and run logging for free — and the workspace's
//! protocol-invariant and determinism suites apply to your algorithm
//! unchanged.
//!
//! ### The payload contract: named tensor bundles
//!
//! `payload_template(k)` describes device `k`'s per-round **uplink** as a
//! *named tensor bundle* — a [`StateDict`](fedzkt_nn::StateDict) whose
//! tensors are whatever your protocol ships, in a fixed order. That may
//! be a model's parameters ([`FedAvg`], [`FedEt`]), a single
//! alignment-sized logit tensor (FedMD), or a per-sample
//! feature/logit/label triple ([`FedGkt`]) — the template does **not**
//! have to match any module's state. Because every codec's wire size is a
//! pure function of the template's tensor *shapes*, the protocol suite
//! can assert `Σ wire_bytes(template) == recorded traffic` without
//! knowing your protocol. When the two directions carry differently
//! shaped bundles, also override `downlink_template(k)` (it defaults to
//! the uplink template); the driver charges mid-round dropouts their
//! downlink at that template's size, and the invariant suite checks
//! downlink totals against it.
//!
//! ## Example
//!
//! ```
//! use fedzkt_data::{DataFamily, Partition, SynthConfig};
//! use fedzkt_fl::{FedAvg, FedAvgConfig, SimConfig, Simulation};
//! use fedzkt_models::ModelSpec;
//!
//! let (train, test) = SynthConfig {
//!     family: DataFamily::MnistLike, img: 8, train_n: 64, test_n: 32, seed: 1,
//!     ..Default::default()
//! }.generate();
//! let shards = Partition::Iid.split(train.labels(), 10, 2, 3).unwrap();
//! let sim_cfg = SimConfig { rounds: 1, ..Default::default() };
//! let fed = FedAvg::new(
//!     ModelSpec::Mlp { hidden: 16 },
//!     &train, &shards,
//!     FedAvgConfig { local_epochs: 1, ..Default::default() },
//!     &sim_cfg,
//! );
//! let mut sim = Simulation::builder(fed, test, sim_cfg).build();
//! let log = sim.run();
//! assert_eq!(log.rounds.len(), 1);
//! ```

#![warn(missing_docs)]

mod aggregate;
pub mod checkpoint;
pub mod churn;
pub mod codec;
mod comm;
mod driver;
mod eval;
mod fedavg;
mod fedet;
mod fedgkt;
pub mod json;
mod metrics;
mod participation;
pub mod registry;
mod simclock;
mod training;

pub use aggregate::{average_state_dicts, StreamingAverage};
pub use checkpoint::{AlgoState, SimCheckpoint};
pub use churn::{ChurnProcess, ChurnSpec};
pub use codec::{CodecError, CodecSpec, PayloadCodec};
pub use comm::CommTracker;
pub use driver::{
    ErasedSimulation, FederatedAlgorithm, RoundContext, SimConfig, Simulation, SimulationBuilder,
};
pub use eval::{accuracy, evaluate};
pub use fedavg::{FedAvg, FedAvgConfig};
pub use fedet::{FedEt, FedEtConfig};
pub use fedgkt::{FedGkt, FedGktConfig};
pub use fedzkt_tensor::ComputeFormat;
pub use metrics::{RoundMetrics, RunLog};
pub use participation::ParticipationSampler;
pub use registry::{DeviceRegistry, Materialization};
pub use simclock::{DeviceResources, RoundParticipant, SimClock};
pub use training::{
    digest_logits, train_local, train_local_fleet, DigestConfig, FleetJob, LocalTrainConfig,
};
