//! FedZKT hyperparameters.

use fedzkt_autograd::DistillLoss;
use fedzkt_models::{GeneratorSpec, ModelSpec};
use serde::{Deserialize, Serialize};

/// The knobs of FedZKT's update rules (defaults follow §IV-A3, scaled to
/// the synthetic quick workloads; the `paper-small` / `paper-cifar`
/// presets of the scenario registry restore paper values such as
/// `nD = 200/500` and batch 256).
///
/// Protocol-level knobs — rounds, participation, seed, worker threads,
/// evaluation — live in [`SimConfig`](fedzkt_fl::SimConfig): they are
/// owned by the [`Simulation`](fedzkt_fl::Simulation) driver and shared by
/// every algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FedZktConfig {
    /// Local epochs per round `T_l` (paper: 5 small / 10 CIFAR).
    pub local_epochs: usize,
    /// Server distillation iterations `nD = nG = nS` per round
    /// (paper: 200 small / 500 CIFAR).
    pub distill_iters: usize,
    /// Bidirectional-transfer iterations (global → devices, Eq. 8);
    /// the paper reuses `nD`.
    pub transfer_iters: usize,
    /// On-device mini-batch size (paper: 256).
    pub device_batch: usize,
    /// Generated-batch size for distillation (paper: 256).
    pub distill_batch: usize,
    /// On-device SGD learning rate (paper: 0.01).
    pub device_lr: f32,
    /// On-device SGD momentum.
    pub device_momentum: f32,
    /// Server/global-model SGD learning rate `η_S` (paper: 0.01).
    pub server_lr: f32,
    /// Learning rate for the global→device bidirectional transfer (Eq. 8).
    /// The paper reuses `η_S`; exposed separately because it controls how
    /// hard devices are pulled toward the (possibly still-weak) global
    /// model — ablated in the bench harness.
    pub transfer_lr: f32,
    /// Generator Adam learning rate `η_G` (paper: 0.001).
    pub generator_lr: f32,
    /// Disagreement loss `L` for the zero-shot game (paper proposal: SL).
    pub loss: DistillLoss,
    /// Simulated server throughput (samples/second) used to charge the
    /// zero-shot game's compute to the simulated clock when a
    /// [`Simulation`](fedzkt_fl::Simulation) has device resources
    /// attached: the server processes `2·nD + transfer_iters` generated
    /// batches per round. Datacenter-class by default (~100× the
    /// simulator's smartphone profile); `f32::INFINITY` models a free
    /// server.
    pub server_samples_per_sec: f32,
    /// ℓ2 proximal coefficient μ of Eq. 9 (0 disables; the paper uses the
    /// plain `‖·‖²` term, i.e. μ = 1, for non-IID runs).
    pub prox_mu: f32,
    /// Generator architecture.
    pub generator: GeneratorSpec,
    /// Global (server) model architecture `F`.
    pub global_model: ModelSpec,
    /// Record `‖∇ₓL‖` for all three candidate losses every round (Fig. 2).
    pub probe_grad_norms: bool,
    /// Ablation switch: use a *freshly initialised* generator for the
    /// global→device transfer instead of reusing the adversarially trained
    /// one. The paper's design (§III-B3) argues reuse is what makes Eq. 8
    /// effective; this knob lets the bench harness test that claim.
    pub fresh_generator_for_transfer: bool,
}

impl Default for FedZktConfig {
    fn default() -> Self {
        FedZktConfig {
            local_epochs: 2,
            distill_iters: 30,
            transfer_iters: 30,
            device_batch: 32,
            distill_batch: 32,
            device_lr: 0.01,
            device_momentum: 0.9,
            server_lr: 0.01,
            transfer_lr: 0.01,
            generator_lr: 1e-3,
            loss: DistillLoss::Sl,
            server_samples_per_sec: 50_000.0,
            prox_mu: 0.0,
            generator: GeneratorSpec::default(),
            global_model: ModelSpec::SmallCnn { base_channels: 8 },
            probe_grad_norms: false,
            fresh_generator_for_transfer: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedzkt_fl::SimConfig;

    #[test]
    fn defaults_use_sl_loss() {
        let cfg = FedZktConfig::default();
        assert_eq!(cfg.loss, DistillLoss::Sl);
        assert_eq!(cfg.prox_mu, 0.0);
        // Full participation is the protocol-level default.
        assert_eq!(SimConfig::default().participation, 1.0);
    }
}
