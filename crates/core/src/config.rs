//! FedZKT hyperparameters.

use fedzkt_autograd::DistillLoss;
use fedzkt_fl::SimConfig;
use fedzkt_models::{GeneratorSpec, ModelSpec};
use serde::{Deserialize, Serialize};

/// The knobs of FedZKT's update rules (defaults follow §IV-A3, scaled to
/// the synthetic quick workloads; the bench harness's `--paper` mode
/// restores paper values such as `nD = 200/500` and batch 256).
///
/// Protocol-level knobs — rounds, participation, seed, worker threads,
/// evaluation — live in [`SimConfig`]: they are owned by the
/// [`Simulation`](fedzkt_fl::Simulation) driver and shared by every
/// algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FedZktConfig {
    /// Local epochs per round `T_l` (paper: 5 small / 10 CIFAR).
    pub local_epochs: usize,
    /// Server distillation iterations `nD = nG = nS` per round
    /// (paper: 200 small / 500 CIFAR).
    pub distill_iters: usize,
    /// Bidirectional-transfer iterations (global → devices, Eq. 8);
    /// the paper reuses `nD`.
    pub transfer_iters: usize,
    /// On-device mini-batch size (paper: 256).
    pub device_batch: usize,
    /// Generated-batch size for distillation (paper: 256).
    pub distill_batch: usize,
    /// On-device SGD learning rate (paper: 0.01).
    pub device_lr: f32,
    /// On-device SGD momentum.
    pub device_momentum: f32,
    /// Server/global-model SGD learning rate `η_S` (paper: 0.01).
    pub server_lr: f32,
    /// Learning rate for the global→device bidirectional transfer (Eq. 8).
    /// The paper reuses `η_S`; exposed separately because it controls how
    /// hard devices are pulled toward the (possibly still-weak) global
    /// model — ablated in the bench harness.
    pub transfer_lr: f32,
    /// Generator Adam learning rate `η_G` (paper: 0.001).
    pub generator_lr: f32,
    /// Disagreement loss `L` for the zero-shot game (paper proposal: SL).
    pub loss: DistillLoss,
    /// Simulated server throughput (samples/second) used to charge the
    /// zero-shot game's compute to the simulated clock when a
    /// [`Simulation`](fedzkt_fl::Simulation) has device resources
    /// attached: the server processes `2·nD + transfer_iters` generated
    /// batches per round. Datacenter-class by default (~100× the
    /// simulator's smartphone profile); `f32::INFINITY` models a free
    /// server.
    pub server_samples_per_sec: f32,
    /// ℓ2 proximal coefficient μ of Eq. 9 (0 disables; the paper uses the
    /// plain `‖·‖²` term, i.e. μ = 1, for non-IID runs).
    pub prox_mu: f32,
    /// Generator architecture.
    pub generator: GeneratorSpec,
    /// Global (server) model architecture `F`.
    pub global_model: ModelSpec,
    /// Record `‖∇ₓL‖` for all three candidate losses every round (Fig. 2).
    pub probe_grad_norms: bool,
    /// Ablation switch: use a *freshly initialised* generator for the
    /// global→device transfer instead of reusing the adversarially trained
    /// one. The paper's design (§III-B3) argues reuse is what makes Eq. 8
    /// effective; this knob lets the bench harness test that claim.
    pub fresh_generator_for_transfer: bool,
}

impl Default for FedZktConfig {
    fn default() -> Self {
        FedZktConfig {
            local_epochs: 2,
            distill_iters: 30,
            transfer_iters: 30,
            device_batch: 32,
            distill_batch: 32,
            device_lr: 0.01,
            device_momentum: 0.9,
            server_lr: 0.01,
            transfer_lr: 0.01,
            generator_lr: 1e-3,
            loss: DistillLoss::Sl,
            server_samples_per_sec: 50_000.0,
            prox_mu: 0.0,
            generator: GeneratorSpec::default(),
            global_model: ModelSpec::SmallCnn { base_channels: 8 },
            probe_grad_norms: false,
            fresh_generator_for_transfer: false,
        }
    }
}

impl FedZktConfig {
    /// Paper-scale parameters for the small datasets (MNIST/KMNIST/FASHION):
    /// `T = 50`, `T_l = 5`, `nD = 200`, batch 256. Returned as the
    /// protocol/algorithm config pair the [`Simulation`](fedzkt_fl::Simulation)
    /// builder consumes.
    pub fn paper_small() -> (SimConfig, Self) {
        (
            SimConfig { rounds: 50, ..Default::default() },
            FedZktConfig {
                local_epochs: 5,
                distill_iters: 200,
                transfer_iters: 200,
                device_batch: 256,
                distill_batch: 256,
                ..Default::default()
            },
        )
    }

    /// Paper-scale parameters for CIFAR-10: `T = 100`, `T_l = 10`,
    /// `nD = 500`, batch 256.
    pub fn paper_cifar() -> (SimConfig, Self) {
        (
            SimConfig { rounds: 100, ..Default::default() },
            FedZktConfig {
                local_epochs: 10,
                distill_iters: 500,
                transfer_iters: 500,
                device_batch: 256,
                distill_batch: 256,
                ..Default::default()
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_use_sl_loss() {
        let cfg = FedZktConfig::default();
        assert_eq!(cfg.loss, DistillLoss::Sl);
        assert_eq!(cfg.prox_mu, 0.0);
        // Full participation is the protocol-level default.
        assert_eq!(SimConfig::default().participation, 1.0);
    }

    #[test]
    fn paper_presets_match_section_iv_a3() {
        let (sim, small) = FedZktConfig::paper_small();
        assert_eq!((sim.rounds, small.local_epochs, small.distill_iters), (50, 5, 200));
        let (sim, cifar) = FedZktConfig::paper_cifar();
        assert_eq!((sim.rounds, cifar.local_epochs, cifar.distill_iters), (100, 10, 500));
        assert_eq!(cifar.device_batch, 256);
        assert!((cifar.generator_lr - 1e-3).abs() < 1e-9);
        assert!((cifar.server_lr - 0.01).abs() < 1e-9);
    }
}
