//! The gradient-norm probe behind Figure 2.
//!
//! For a synthetic batch `x`, the probe evaluates the disagreement
//! `L(F(x), f_ens(x))` under each candidate loss (KL, logit-ℓ1, SL) and
//! records `‖∇ₓ L‖₂`. The paper's Hypotheses 1–2 predict, as `F → f_ens`:
//! `‖∇ₓ L_KL‖ ≤ ‖∇ₓ L_SL‖ ≤ ‖∇ₓ L_ℓ1‖`.

use fedzkt_autograd::{DistillLoss, Var};
use fedzkt_nn::Module;
use fedzkt_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// One probe measurement (a point on Figure 2's three curves).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GradNormRecord {
    /// Communication round (1-based).
    pub round: usize,
    /// `‖∇ₓ L‖₂` for the KL-divergence loss (Eq. 3).
    pub kl: f32,
    /// `‖∇ₓ L‖₂` for the logit-ℓ1 loss (Eq. 4).
    pub logit_l1: f32,
    /// `‖∇ₓ L‖₂` for the SL loss (Eq. 5).
    pub sl: f32,
}

/// Collects [`GradNormRecord`]s across a run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct GradNormProbe {
    records: Vec<GradNormRecord>,
}

impl GradNormProbe {
    /// An empty probe.
    pub fn new() -> Self {
        GradNormProbe::default()
    }

    /// Measure all three losses on batch `x` against the global model and
    /// the device ensemble, and record the result for `round`.
    ///
    /// Gradients flow through *both* the student and every teacher into
    /// `x`, exactly as in the generator's objective.
    pub fn measure(
        &mut self,
        round: usize,
        global: &dyn Module,
        devices: &[&dyn Module],
        x: &Tensor,
    ) -> GradNormRecord {
        // Measure in eval mode so batch-norm running statistics are not
        // perturbed — the probe must be side-effect free on training.
        global.set_training(false);
        for d in devices {
            d.set_training(false);
        }
        let norm_for = |loss: DistillLoss| -> f32 {
            let input = Var::parameter(x.clone());
            let student = global.forward(&input);
            let teacher_logits: Vec<Var> = devices.iter().map(|d| d.forward(&input)).collect();
            let teacher_refs: Vec<&Var> = teacher_logits.iter().collect();
            let l = loss.eval(&student, &teacher_refs);
            l.backward();
            let g = input.grad().expect("input gradient");
            // Zero any parameter gradients this probe produced so it never
            // perturbs the surrounding training loop.
            for p in global.params() {
                p.zero_grad();
            }
            for d in devices {
                for p in d.params() {
                    p.zero_grad();
                }
            }
            g.norm_l2()
        };
        let record = GradNormRecord {
            round,
            kl: norm_for(DistillLoss::Kl),
            logit_l1: norm_for(DistillLoss::LogitL1),
            sl: norm_for(DistillLoss::Sl),
        };
        global.set_training(true);
        for d in devices {
            d.set_training(true);
        }
        self.records.push(record);
        record
    }

    /// All measurements so far.
    pub fn records(&self) -> &[GradNormRecord] {
        &self.records
    }

    /// Render as CSV (`round,kl,logit_l1,sl`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("round,kl,logit_l1,sl\n");
        for r in &self.records {
            out.push_str(&format!("{},{:.6},{:.6},{:.6}\n", r.round, r.kl, r.logit_l1, r.sl));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedzkt_models::ModelSpec;
    use fedzkt_nn::{load_state_dict, state_dict};
    use fedzkt_tensor::seeded_rng;

    #[test]
    fn probe_records_positive_norms() {
        let global = ModelSpec::Mlp { hidden: 16 }.build(1, 4, 8, 1);
        let dev_a = ModelSpec::Mlp { hidden: 8 }.build(1, 4, 8, 2);
        let dev_b = ModelSpec::SmallCnn { base_channels: 2 }.build(1, 4, 8, 3);
        let mut rng = seeded_rng(4);
        let x = Tensor::randn(&[4, 1, 8, 8], &mut rng);
        let mut probe = GradNormProbe::new();
        let r = probe.measure(1, global.as_ref(), &[dev_a.as_ref(), dev_b.as_ref()], &x);
        assert!(r.kl > 0.0 && r.logit_l1 > 0.0 && r.sl > 0.0);
        assert_eq!(probe.records().len(), 1);
    }

    #[test]
    fn hypotheses_ordering_holds_near_convergence() {
        // Student == teacher (same weights): F has converged to f_ens.
        // Hypothesis 1: KL grads vanish relative to SL; Hypothesis 2:
        // logit-l1 grads dominate SL.
        let spec = ModelSpec::Mlp { hidden: 16 };
        let student = spec.build(1, 4, 8, 7);
        let teacher = spec.build(1, 4, 8, 8);
        load_state_dict(teacher.as_ref(), &state_dict(student.as_ref())).unwrap();
        // Perturb the teacher slightly: near-convergence, not identical
        // (at exact equality every loss has zero gradient).
        let mut rng = seeded_rng(11);
        for p in teacher.params() {
            let noise = Tensor::randn(&p.shape(), &mut rng).mul_scalar(0.01);
            p.set_value(p.value_clone().add(&noise).unwrap());
        }
        let mut rng = seeded_rng(9);
        let x = Tensor::randn(&[8, 1, 8, 8], &mut rng);
        let mut probe = GradNormProbe::new();
        let r = probe.measure(1, student.as_ref(), &[teacher.as_ref()], &x);
        assert!(r.kl <= r.sl + 1e-6, "KL {} should not exceed SL {}", r.kl, r.sl);
        assert!(r.logit_l1 >= r.sl, "l1 {} should dominate SL {}", r.logit_l1, r.sl);
    }

    #[test]
    fn probe_does_not_leave_gradients_behind() {
        let global = ModelSpec::Mlp { hidden: 8 }.build(1, 2, 8, 1);
        let dev = ModelSpec::Mlp { hidden: 8 }.build(1, 2, 8, 2);
        let mut rng = seeded_rng(5);
        let x = Tensor::randn(&[2, 1, 8, 8], &mut rng);
        GradNormProbe::new().measure(1, global.as_ref(), &[dev.as_ref()], &x);
        assert!(global.params().iter().all(|p| p.grad().is_none()));
        assert!(dev.params().iter().all(|p| p.grad().is_none()));
    }

    #[test]
    fn csv_shape() {
        let mut probe = GradNormProbe::new();
        probe.records.push(GradNormRecord { round: 1, kl: 0.1, logit_l1: 0.3, sl: 0.2 });
        let csv = probe.to_csv();
        assert!(csv.starts_with("round,kl"));
        assert_eq!(csv.lines().count(), 2);
    }
}
