//! # fedzkt-core
//!
//! The FedZKT algorithm (Zhang, Wu & Yuan, ICDCS 2022) and its evaluation
//! counterparts.
//!
//! FedZKT enables federated learning across devices running **independently
//! chosen model architectures**, with **no public dataset and no
//! pre-trained generator**. Per round (Algorithm 1):
//!
//! 1. **DeviceUpdate** (Algorithm 2 + Eq. 9): each active device runs plain
//!    local SGD with cross-entropy, optionally adding the ℓ2 proximal term
//!    `‖w − w_received‖²` against non-IID drift, then uploads its own model
//!    parameters.
//! 2. **ServerUpdate** (Algorithm 3): the server plays a zero-sum game
//!    between a generator `G` and the global model `F` against the
//!    ensemble of uploaded on-device models (Eq. 2): `G` *maximises* the
//!    disagreement `L(F(G(z)), f_ens(G(z)))` while `F` *minimises* it,
//!    with `L` the paper's Softmax-ℓ1 (SL) loss by default (Eq. 5).
//! 3. **Bidirectional transfer** (Eq. 8): the trained generator's samples
//!    are reused to distill the updated global knowledge *into each
//!    on-device architecture* (KL loss), and only those per-device
//!    parameters are sent back.
//!
//! This crate also implements the **FedMD** baseline (public-dataset logit
//! consensus), the local-only / centralized bound trainers of Table III,
//! and the gradient-norm probe behind Figure 2.
//!
//! Both [`FedZkt`] and [`FedMd`] are
//! [`FederatedAlgorithm`](fedzkt_fl::FederatedAlgorithm) implementations:
//! the round loop, participation sampling, communication accounting,
//! simulated time and evaluation are owned by the
//! [`Simulation`](fedzkt_fl::Simulation) driver in `fedzkt-fl`, shared
//! with the FedAvg/FedProx baselines.
//!
//! ## Example
//!
//! ```no_run
//! use fedzkt_core::{FedZkt, FedZktConfig};
//! use fedzkt_data::{DataFamily, Partition, SynthConfig};
//! use fedzkt_fl::{SimConfig, Simulation};
//! use fedzkt_models::ModelSpec;
//!
//! let (train, test) = SynthConfig { family: DataFamily::MnistLike, ..Default::default() }.generate();
//! let shards = Partition::Iid.split(train.labels(), train.num_classes(), 5, 1).unwrap();
//! let zoo = ModelSpec::assign_round_robin(&ModelSpec::paper_zoo_small(), 5);
//! let sim_cfg = SimConfig::default();
//! let fed = FedZkt::new(&zoo, &train, &shards, FedZktConfig::default(), &sim_cfg);
//! let mut sim = Simulation::builder(fed, test, sim_cfg).build();
//! let log = sim.run();
//! println!("final average on-device accuracy: {:.1}%", 100.0 * log.final_accuracy());
//! ```

#![warn(missing_docs)]

mod bounds;
mod config;
mod fedmd;
mod fedzkt;
mod probe;

pub use bounds::{centralized_bound, local_only_bound, BoundConfig};
pub use config::FedZktConfig;
pub use fedmd::{FedMd, FedMdConfig};
pub use fedzkt::FedZkt;
pub use probe::{GradNormProbe, GradNormRecord};

// Re-export the loss selector: it is part of this crate's configuration
// surface even though it lives with the autograd losses.
pub use fedzkt_autograd::DistillLoss;
