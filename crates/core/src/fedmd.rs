//! The FedMD baseline (Li & Wang, 2019) — the representative
//! *data-dependent* heterogeneous-FL algorithm the paper compares against
//! in Table I and Figures 3–4.
//!
//! FedMD also lets every device choose its own architecture, but transfers
//! knowledge through a **public dataset**: each round the active devices
//! share their class scores (logits) on a public subset, the server
//! averages them into a consensus, and each device *digests* the consensus
//! before *revisiting* its private data. The quality of the public dataset
//! is FedMD's Achilles' heel — reproduced here by running it with a
//! similar-distribution public set (`Cifar100Like`) and a
//! different-distribution one (`SvhnLike`).
//!
//! Runs under the [`Simulation`](fedzkt_fl::Simulation) driver like the
//! other algorithms: the transfer-learning warm-up happens lazily, per
//! device, the first round a device participates (a straggler that never
//! participates never trains), and the digest/revisit phases execute
//! device-parallel on the [`train_local_fleet`] worker pool.

use fedzkt_autograd::Var;
use fedzkt_data::Dataset;
use fedzkt_fl::{
    train_local_fleet, DigestConfig, FederatedAlgorithm, FleetJob, LocalTrainConfig, RoundContext,
    SimConfig,
};
use fedzkt_models::ModelSpec;
use fedzkt_nn::{load_state_dict, state_dict, Module, StateDict};
use fedzkt_tensor::{seeded_rng, split_seed, Tensor};
use rand::seq::SliceRandom;

/// Hyperparameters of [`FedMd`]'s update rules. Protocol-level knobs
/// (rounds, participation, seed, threads, evaluation) live in
/// [`SimConfig`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FedMdConfig {
    /// Warm-up epochs on the public dataset (transfer-learning phase).
    pub public_warmup_epochs: usize,
    /// Warm-up epochs on the private shard after the public phase.
    pub private_warmup_epochs: usize,
    /// Public samples scored per round (the "alignment set").
    pub alignment_size: usize,
    /// Epochs of consensus digestion per round.
    pub digest_epochs: usize,
    /// Epochs of private revisit per round.
    pub revisit_epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Learning rate.
    pub lr: f32,
}

impl Default for FedMdConfig {
    fn default() -> Self {
        FedMdConfig {
            public_warmup_epochs: 2,
            private_warmup_epochs: 2,
            alignment_size: 128,
            digest_epochs: 2,
            revisit_epochs: 2,
            batch_size: 32,
            lr: 0.01,
        }
    }
}

struct MdDevice {
    spec: ModelSpec,
    model: Box<dyn Module>,
    data: Dataset,
    /// Lazily set the first round this device participates.
    warmed_up: bool,
    /// Did the warm-up run in the round currently being accounted? The
    /// simulated clock reads `local_samples` after the phases, so the
    /// one-off warm-up compute must be charged to that round.
    warmed_this_round: bool,
}

/// Alignment state produced by `local_update`, consumed by
/// `server_update`.
struct Alignment {
    inputs: Tensor,
    consensus: Tensor,
}

/// A FedMD federation over heterogeneous on-device models and a public
/// dataset.
pub struct FedMd {
    cfg: FedMdConfig,
    seed: u64,
    io: (usize, usize, usize),
    devices: Vec<MdDevice>,
    public: Dataset,
    pending: Option<Alignment>,
}

impl FedMd {
    /// Build the federation. `public` provides the alignment inputs; its
    /// labels are taken modulo the private class count for the
    /// transfer-learning warm-up (the public task may have more classes,
    /// e.g. CIFAR-100 vs CIFAR-10). `sim` supplies the run seed.
    ///
    /// # Panics
    /// Panics when `zoo`/`shards` lengths differ or are empty, or when the
    /// public set's image geometry differs from the private one.
    pub fn new(
        zoo: &[ModelSpec],
        train: &Dataset,
        shards: &[Vec<usize>],
        public: Dataset,
        cfg: FedMdConfig,
        sim: &SimConfig,
    ) -> Self {
        assert!(!zoo.is_empty(), "need at least one device");
        assert_eq!(zoo.len(), shards.len(), "zoo/shards length mismatch");
        assert_eq!(
            (public.channels(), public.img_size()),
            (train.channels(), train.img_size()),
            "public/private image geometry mismatch"
        );
        let (channels, classes, img) = (train.channels(), train.num_classes(), train.img_size());
        // Re-label the public set into the private class space.
        let public = Dataset::new(
            public.images().clone(),
            public.labels().iter().map(|&l| l % classes).collect(),
            classes,
        );
        let devices = zoo
            .iter()
            .zip(shards)
            .enumerate()
            .map(|(i, (spec, idx))| MdDevice {
                spec: *spec,
                model: spec.build(channels, classes, img, split_seed(sim.seed, 200 + i as u64)),
                data: train.subset(idx),
                warmed_up: false,
                warmed_this_round: false,
            })
            .collect();
        FedMd {
            cfg,
            seed: sim.seed,
            io: (channels, classes, img),
            devices,
            public,
            pending: None,
        }
    }

    /// The re-labelled public dataset.
    pub fn public(&self) -> &Dataset {
        &self.public
    }

    /// Has device `k` gone through its transfer-learning warm-up yet?
    pub fn warmed_up(&self, k: usize) -> bool {
        self.devices[k].warmed_up
    }

    /// Transfer-learning warm-up for the not-yet-warmed devices of
    /// `active`: public data, then private data, both phases in **one**
    /// device-parallel fleet dispatch (the public pass rides as the job's
    /// `pretrain`, so each cold device pays the snapshot→rebuild→load
    /// round-trip once). Lazy so stragglers that never participate stay
    /// untouched.
    fn warmup(&mut self, active: &[usize], threads: usize) {
        let cold: Vec<usize> =
            active.iter().copied().filter(|&k| !self.devices[k].warmed_up).collect();
        if cold.is_empty() {
            return;
        }
        let jobs: Vec<FleetJob> = cold
            .iter()
            .map(|&k| {
                let dev = &self.devices[k];
                let phase_cfg = |epochs: usize, seed_base: u64| LocalTrainConfig {
                    epochs,
                    batch_size: self.cfg.batch_size,
                    lr: self.cfg.lr,
                    momentum: 0.9,
                    seed: split_seed(self.seed, seed_base + k as u64),
                    ..Default::default()
                };
                FleetJob {
                    spec: dev.spec,
                    snapshot: state_dict(dev.model.as_ref()),
                    data: &dev.data,
                    cfg: phase_cfg(self.cfg.private_warmup_epochs, 400),
                    pretrain: Some((&self.public, phase_cfg(self.cfg.public_warmup_epochs, 300))),
                    digest: None,
                    rebuild_seed: split_seed(self.seed, 0xFD_0000 + k as u64),
                }
            })
            .collect();
        let results = train_local_fleet(&jobs, self.io, threads);
        drop(jobs);
        for (&k, (_, sd)) in cold.iter().zip(results) {
            load_state_dict(self.devices[k].model.as_ref(), &sd)
                .expect("warmup result matches device architecture");
        }
        for &k in &cold {
            self.devices[k].warmed_up = true;
            self.devices[k].warmed_this_round = true;
        }
    }

    /// Size of the round's alignment subset.
    fn alignment_len(&self) -> usize {
        self.cfg.alignment_size.min(self.public.len())
    }

    /// Wrap a logit tensor as the single-tensor [`StateDict`] the wire
    /// codecs operate on.
    fn logit_payload(scores: Tensor) -> StateDict {
        StateDict { params: vec![scores], buffers: Vec::new() }
    }
}

impl FederatedAlgorithm for FedMd {
    fn devices(&self) -> usize {
        self.devices.len()
    }

    /// FedMD steps 1–3: warm up first-time participants, sample the
    /// round's alignment subset, have every active device score it, and
    /// average the scores into the consensus.
    fn local_update(&mut self, round: usize, active: &[usize], ctx: &mut RoundContext) -> f32 {
        for dev in &mut self.devices {
            dev.warmed_this_round = false;
        }
        self.warmup(active, ctx.threads());

        // 1. Server samples the alignment subset of the public data.
        let mut rng = seeded_rng(split_seed(self.seed, 500 + round as u64));
        let mut indices: Vec<usize> = (0..self.public.len()).collect();
        indices.shuffle(&mut rng);
        indices.truncate(self.alignment_len());
        let (align_x, _) = self.public.batch(&indices);
        let align_var = Var::constant(align_x.clone());

        // 2. Communicate: each active device scores the subset and ships
        // its logits over the wire; the server averages what it *decoded*,
        // so a lossy codec's error enters the consensus.
        let mut logits: Vec<Tensor> = Vec::with_capacity(active.len());
        for &k in active {
            let dev = &self.devices[k];
            dev.model.set_training(false);
            let scores = fedzkt_autograd::no_grad(|| dev.model.forward(&align_var).value_clone());
            dev.model.set_training(true);
            let (decoded, wire) = ctx.through_wire(&Self::logit_payload(scores));
            ctx.comm.record_upload(k, wire);
            logits.push(decoded.params.into_iter().next().expect("one logit tensor"));
        }

        // 3. Aggregate: consensus = average of active devices' scores.
        let mut consensus = logits[0].clone();
        for l in &logits[1..] {
            consensus.add_scaled_inplace(l, 1.0).expect("logit shapes");
        }
        let consensus = consensus.mul_scalar(1.0 / logits.len() as f32);
        self.pending = Some(Alignment { inputs: align_x, consensus });

        // The loss-bearing device phase (revisit) runs after aggregation;
        // `server_update` reports it through the context.
        0.0
    }

    /// FedMD steps 4–5: broadcast the consensus, then each active device
    /// digests it and revisits its private data — both phases run
    /// device-parallel on the fleet.
    fn server_update(&mut self, round: usize, active: &[usize], ctx: &mut RoundContext) {
        let Alignment { inputs, consensus } =
            self.pending.take().expect("local_update ran this round");
        // The consensus broadcast goes through the wire once; every active
        // device digests the decoded copy and is charged its wire size.
        let (decoded, logit_wire) = ctx.through_wire(&Self::logit_payload(consensus));
        let consensus = decoded.params.into_iter().next().expect("one consensus tensor");
        let jobs: Vec<FleetJob> = active
            .iter()
            .map(|&k| {
                let dev = &self.devices[k];
                FleetJob {
                    spec: dev.spec,
                    snapshot: state_dict(dev.model.as_ref()),
                    data: &dev.data,
                    cfg: LocalTrainConfig {
                        epochs: self.cfg.revisit_epochs,
                        batch_size: self.cfg.batch_size,
                        lr: self.cfg.lr,
                        momentum: 0.9,
                        seed: split_seed(self.seed, 700 + (round * 31 + k) as u64),
                        ..Default::default()
                    },
                    pretrain: None,
                    digest: Some(DigestConfig {
                        inputs: &inputs,
                        targets: &consensus,
                        epochs: self.cfg.digest_epochs,
                        batch_size: self.cfg.batch_size,
                        // The digest step matches raw logits with an ℓ1
                        // loss, whose gradients are much larger than
                        // cross-entropy's; a fraction of the base learning
                        // rate keeps it from erasing local features.
                        lr: self.cfg.lr * 0.2,
                        seed: split_seed(self.seed, 600 + (round * 31 + k) as u64),
                    }),
                    rebuild_seed: split_seed(self.seed, 0xB11D_0000 + (round * 31 + k) as u64),
                }
            })
            .collect();
        let results = train_local_fleet(&jobs, self.io, ctx.threads());
        drop(jobs);
        let mut loss_sum = 0.0f32;
        for (&k, (loss, sd)) in active.iter().zip(results) {
            ctx.comm.record_download(k, logit_wire);
            loss_sum += loss;
            load_state_dict(self.devices[k].model.as_ref(), &sd)
                .expect("fleet result matches device architecture");
        }
        ctx.set_train_loss(loss_sum / active.len().max(1) as f32);
    }

    fn device_model(&self, k: usize) -> &dyn Module {
        self.devices[k].model.as_ref()
    }

    /// FedMD's payload is logit-shaped, not model-shaped: the alignment
    /// subset's class scores.
    fn payload_template(&self, _k: usize) -> StateDict {
        Self::logit_payload(Tensor::zeros(&[self.alignment_len(), self.public.num_classes()]))
    }

    /// Digest over the alignment set plus the private revisit — and, in a
    /// device's first participating round, the one-off transfer-learning
    /// warm-up it just ran (public + private epochs).
    fn local_samples(&self, k: usize) -> usize {
        let dev = &self.devices[k];
        let warmup = if dev.warmed_this_round {
            self.cfg.public_warmup_epochs * self.public.len()
                + self.cfg.private_warmup_epochs * dev.data.len()
        } else {
            0
        };
        warmup
            + self.cfg.revisit_epochs * dev.data.len()
            + self.cfg.digest_epochs * self.alignment_len()
    }

    fn construction_seed(&self) -> Option<u64> {
        Some(self.seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedzkt_data::{DataFamily, Partition, SynthConfig};
    use fedzkt_fl::Simulation;

    fn setup(public_family: DataFamily) -> Simulation<FedMd> {
        setup_with(public_family, SimConfig { rounds: 2, seed: 1, ..Default::default() })
    }

    fn setup_with(public_family: DataFamily, sim: SimConfig) -> Simulation<FedMd> {
        let (train, test) = SynthConfig {
            family: DataFamily::Cifar10Like,
            img: 8,
            train_n: 96,
            test_n: 48,
            classes: 4,
            seed: 3,
            ..Default::default()
        }
        .generate();
        let (public, _) = SynthConfig {
            family: public_family,
            img: 8,
            train_n: 64,
            test_n: 8,
            classes: if public_family == DataFamily::Cifar100Like { 8 } else { 4 },
            seed: 9,
            ..Default::default()
        }
        .generate();
        let shards = Partition::Iid.split(train.labels(), 4, 3, 5).unwrap();
        let zoo = vec![
            ModelSpec::Mlp { hidden: 16 },
            ModelSpec::SmallCnn { base_channels: 2 },
            ModelSpec::LeNet { scale: 0.5, deep: false },
        ];
        let fed = FedMd::new(
            &zoo,
            &train,
            &shards,
            public,
            FedMdConfig {
                public_warmup_epochs: 1,
                private_warmup_epochs: 1,
                alignment_size: 32,
                digest_epochs: 1,
                revisit_epochs: 1,
                batch_size: 16,
                lr: 0.05,
            },
            &sim,
        );
        Simulation::builder(fed, test, sim).build()
    }

    #[test]
    fn fedmd_learns_above_chance() {
        let mut sim = setup(DataFamily::Cifar100Like);
        let log = sim.run();
        assert_eq!(log.rounds.len(), 2);
        assert!(log.final_accuracy() > 0.3, "accuracy {}", log.final_accuracy());
    }

    #[test]
    fn public_labels_are_remapped() {
        let sim = setup(DataFamily::Cifar100Like);
        assert!(sim.algorithm().public().labels().iter().all(|&l| l < 4));
    }

    #[test]
    fn communication_is_logit_sized_not_model_sized() {
        use fedzkt_fl::{CodecSpec, PayloadCodec};
        let mut sim = setup(DataFamily::Cifar100Like);
        let metrics = sim.round(0);
        // 3 devices × the raw wire size of a 32-sample × 4-class logit
        // payload (4 bytes a value + the self-describing header).
        let wire = CodecSpec::Raw.wire_bytes(&sim.algorithm().payload_template(0)) as u64;
        assert_eq!(wire, 19 + 32 * 4 * 4, "one [32,4] tensor behind a 19-byte header");
        assert_eq!(metrics.upload_bytes, 3 * wire);
        assert_eq!(metrics.download_bytes, 3 * wire);
    }

    #[test]
    fn warmup_is_lazy_and_runs_once() {
        let mut sim = setup(DataFamily::Cifar100Like);
        assert!((0..3).all(|k| !sim.algorithm().warmed_up(k)));
        sim.round(0);
        assert!((0..3).all(|k| sim.algorithm().warmed_up(k)));
        // A second round with everyone already warm: models keep training
        // (no panic, no re-warmup divergence across identical runs).
        sim.round(1);
    }

    #[test]
    fn straggler_is_never_warmed_up() {
        // participation 0.34 of 3 devices → exactly 1 active per round.
        let mut sim = setup_with(
            DataFamily::Cifar100Like,
            SimConfig { rounds: 1, participation: 0.34, seed: 1, ..Default::default() },
        );
        let metrics = sim.round(0);
        assert_eq!(metrics.active_devices.len(), 1);
        for k in 0..3 {
            assert_eq!(
                sim.algorithm().warmed_up(k),
                metrics.active_devices.contains(&k),
                "device {k}"
            );
        }
    }

    #[test]
    fn warmup_compute_is_charged_to_the_first_round() {
        use fedzkt_fl::FederatedAlgorithm as _;
        let mut sim = setup(DataFamily::Cifar100Like);
        sim.round(0);
        // Warm-up just ran: round-0 accounting includes it.
        let first = sim.algorithm().local_samples(0);
        sim.round(1);
        let steady = sim.algorithm().local_samples(0);
        // Steady state is shard×1 revisit epoch + 32×1 digest epoch; the
        // first round adds public(64)×1 + shard×1 of warm-up. Eliminating
        // the shard size: first = 2·steady + 64 − 32.
        assert!(first > steady, "warm-up compute must be charged: {first} vs {steady}");
        assert_eq!(first, 2 * steady + 32);
    }

    #[test]
    fn svhn_public_also_runs() {
        let mut sim = setup(DataFamily::SvhnLike);
        let log = sim.run();
        assert!(log.final_accuracy().is_finite());
    }
}
