//! The FedMD baseline (Li & Wang, 2019) — the representative
//! *data-dependent* heterogeneous-FL algorithm the paper compares against
//! in Table I and Figures 3–4.
//!
//! FedMD also lets every device choose its own architecture, but transfers
//! knowledge through a **public dataset**: each round the devices share
//! their class scores (logits) on a public subset, the server averages them
//! into a consensus, and each device *digests* the consensus before
//! *revisiting* its private data. The quality of the public dataset is
//! FedMD's Achilles' heel — reproduced here by running it with a
//! similar-distribution public set (`Cifar100Like`) and a
//! different-distribution one (`SvhnLike`).

use fedzkt_autograd::Var;
use fedzkt_data::{BatchIter, Dataset};
use fedzkt_fl::{evaluate, train_local, CommTracker, LocalTrainConfig, RoundMetrics, RunLog};
use fedzkt_models::ModelSpec;
use fedzkt_nn::{Module, Optimizer, Sgd, SgdConfig};
use fedzkt_tensor::{seeded_rng, split_seed, Tensor};
use rand::seq::SliceRandom;

/// Configuration for [`FedMd`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FedMdConfig {
    /// Communication rounds.
    pub rounds: usize,
    /// Warm-up epochs on the public dataset (transfer-learning phase).
    pub public_warmup_epochs: usize,
    /// Warm-up epochs on the private shard after the public phase.
    pub private_warmup_epochs: usize,
    /// Public samples scored per round (the "alignment set").
    pub alignment_size: usize,
    /// Epochs of consensus digestion per round.
    pub digest_epochs: usize,
    /// Epochs of private revisit per round.
    pub revisit_epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Learning rate.
    pub lr: f32,
    /// Evaluation batch size.
    pub eval_batch: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for FedMdConfig {
    fn default() -> Self {
        FedMdConfig {
            rounds: 10,
            public_warmup_epochs: 2,
            private_warmup_epochs: 2,
            alignment_size: 128,
            digest_epochs: 2,
            revisit_epochs: 2,
            batch_size: 32,
            lr: 0.01,
            eval_batch: 64,
            seed: 0,
        }
    }
}

struct MdDevice {
    model: Box<dyn Module>,
    data: Dataset,
}

/// A FedMD simulation over heterogeneous on-device models and a public
/// dataset.
pub struct FedMd {
    cfg: FedMdConfig,
    devices: Vec<MdDevice>,
    public: Dataset,
    test: Dataset,
    log: RunLog,
    warmed_up: bool,
}

impl FedMd {
    /// Build a simulation. `public` provides the alignment inputs; its
    /// labels are taken modulo the private class count for the
    /// transfer-learning warm-up (the public task may have more classes,
    /// e.g. CIFAR-100 vs CIFAR-10).
    ///
    /// # Panics
    /// Panics when `zoo`/`shards` lengths differ or are empty, or when the
    /// public set's image geometry differs from the private one.
    pub fn new(
        zoo: &[ModelSpec],
        train: &Dataset,
        shards: &[Vec<usize>],
        public: Dataset,
        test: Dataset,
        cfg: FedMdConfig,
    ) -> Self {
        assert!(!zoo.is_empty(), "need at least one device");
        assert_eq!(zoo.len(), shards.len(), "zoo/shards length mismatch");
        assert_eq!(
            (public.channels(), public.img_size()),
            (train.channels(), train.img_size()),
            "public/private image geometry mismatch"
        );
        let (channels, classes, img) = (train.channels(), train.num_classes(), train.img_size());
        // Re-label the public set into the private class space.
        let public = Dataset::new(
            public.images().clone(),
            public.labels().iter().map(|&l| l % classes).collect(),
            classes,
        );
        let devices = zoo
            .iter()
            .zip(shards)
            .enumerate()
            .map(|(i, (spec, idx))| MdDevice {
                model: spec.build(channels, classes, img, split_seed(cfg.seed, 200 + i as u64)),
                data: train.subset(idx),
            })
            .collect();
        FedMd { cfg, devices, public, test, log: RunLog::new(), warmed_up: false }
    }

    /// Number of devices.
    pub fn devices(&self) -> usize {
        self.devices.len()
    }

    /// The run log so far.
    pub fn log(&self) -> &RunLog {
        &self.log
    }

    /// Transfer-learning warm-up: public data, then private data (run once
    /// before the first round; [`FedMd::run`] calls it automatically).
    pub fn warmup(&mut self) {
        if self.warmed_up {
            return;
        }
        for (i, dev) in self.devices.iter().enumerate() {
            train_local(
                dev.model.as_ref(),
                &self.public,
                &LocalTrainConfig {
                    epochs: self.cfg.public_warmup_epochs,
                    batch_size: self.cfg.batch_size,
                    lr: self.cfg.lr,
                    momentum: 0.9,
                    seed: split_seed(self.cfg.seed, 300 + i as u64),
                    ..Default::default()
                },
            );
            train_local(
                dev.model.as_ref(),
                &dev.data,
                &LocalTrainConfig {
                    epochs: self.cfg.private_warmup_epochs,
                    batch_size: self.cfg.batch_size,
                    lr: self.cfg.lr,
                    momentum: 0.9,
                    seed: split_seed(self.cfg.seed, 400 + i as u64),
                    ..Default::default()
                },
            );
        }
        self.warmed_up = true;
    }

    /// Execute one communication round.
    pub fn round(&mut self, round: usize) -> RoundMetrics {
        self.warmup();
        let mut comm = CommTracker::new(self.devices.len());

        // 1. Server samples the alignment subset of the public data.
        let mut rng = seeded_rng(split_seed(self.cfg.seed, 500 + round as u64));
        let mut indices: Vec<usize> = (0..self.public.len()).collect();
        indices.shuffle(&mut rng);
        indices.truncate(self.cfg.alignment_size.min(self.public.len()));
        let (align_x, _) = self.public.batch(&indices);
        let align_var = Var::constant(align_x.clone());

        // 2. Communicate: each device scores the subset.
        let classes = self.public.num_classes();
        let logit_bytes = indices.len() * classes * std::mem::size_of::<f32>();
        let mut logits: Vec<Tensor> = Vec::with_capacity(self.devices.len());
        for (k, dev) in self.devices.iter().enumerate() {
            dev.model.set_training(false);
            let scores = fedzkt_autograd::no_grad(|| dev.model.forward(&align_var).value_clone());
            dev.model.set_training(true);
            comm.record_upload(k, logit_bytes);
            logits.push(scores);
        }

        // 3. Aggregate: consensus = average of device scores.
        let mut consensus = logits[0].clone();
        for l in &logits[1..] {
            consensus.add_scaled_inplace(l, 1.0).expect("logit shapes");
        }
        let consensus = consensus.mul_scalar(1.0 / logits.len() as f32);

        // 4-5. Digest the consensus, then revisit private data.
        let mut loss_sum = 0.0f32;
        for (k, dev) in self.devices.iter().enumerate() {
            comm.record_download(k, logit_bytes);
            // The digest step matches raw logits with an ℓ1 loss, whose
            // gradients are much larger than cross-entropy's; a fraction of
            // the base learning rate keeps it from erasing local features.
            digest(
                dev.model.as_ref(),
                &align_x,
                &consensus,
                self.cfg.digest_epochs,
                self.cfg.batch_size,
                self.cfg.lr * 0.2,
                split_seed(self.cfg.seed, 600 + (round * 31 + k) as u64),
            );
            let loss = train_local(
                dev.model.as_ref(),
                &dev.data,
                &LocalTrainConfig {
                    epochs: self.cfg.revisit_epochs,
                    batch_size: self.cfg.batch_size,
                    lr: self.cfg.lr,
                    momentum: 0.9,
                    seed: split_seed(self.cfg.seed, 700 + (round * 31 + k) as u64),
                    ..Default::default()
                },
            );
            loss_sum += loss;
        }

        // Evaluation.
        let device_accuracy: Vec<f32> = self
            .devices
            .iter()
            .map(|d| evaluate(d.model.as_ref(), &self.test, self.cfg.eval_batch))
            .collect();
        let avg = device_accuracy.iter().sum::<f32>() / device_accuracy.len() as f32;
        let mut metrics = RoundMetrics::new(round + 1);
        metrics.avg_device_accuracy = avg;
        metrics.device_accuracy = device_accuracy;
        metrics.train_loss = loss_sum / self.devices.len() as f32;
        metrics.upload_bytes = comm.total_upload();
        metrics.download_bytes = comm.total_download();
        metrics.active_devices = (0..self.devices.len()).collect();
        metrics
    }

    /// Run all configured rounds, returning the log.
    pub fn run(&mut self) -> &RunLog {
        for round in 0..self.cfg.rounds {
            let metrics = self.round(round);
            self.log.push(metrics);
        }
        &self.log
    }
}

/// FedMD "digest": regress the device's logits toward the consensus with an
/// ℓ1 loss (the MAE the FedMD paper prescribes).
fn digest(
    model: &dyn Module,
    inputs: &Tensor,
    consensus: &Tensor,
    epochs: usize,
    batch_size: usize,
    lr: f32,
    seed: u64,
) {
    let n = inputs.shape()[0];
    if n == 0 {
        return;
    }
    let opt = Sgd::new(model.params(), SgdConfig { lr, momentum: 0.9, weight_decay: 0.0 });
    for epoch in 0..epochs {
        for batch in BatchIter::new(n, batch_size, seed.wrapping_add(epoch as u64)) {
            let x = inputs.gather_first(&batch).expect("batch");
            let target = consensus.gather_first(&batch).expect("batch");
            opt.zero_grad();
            let pred = model.forward(&Var::constant(x));
            let loss = pred
                .sub(&Var::constant(target))
                .abs()
                .sum_all()
                .scale(1.0 / batch.len() as f32);
            loss.backward();
            opt.step();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedzkt_data::{DataFamily, Partition, SynthConfig};

    fn setup(public_family: DataFamily) -> FedMd {
        let (train, test) = SynthConfig {
            family: DataFamily::Cifar10Like,
            img: 8,
            train_n: 96,
            test_n: 48,
            classes: 4,
            seed: 3,
            ..Default::default()
        }
        .generate();
        let (public, _) = SynthConfig {
            family: public_family,
            img: 8,
            train_n: 64,
            test_n: 8,
            classes: if public_family == DataFamily::Cifar100Like { 8 } else { 4 },
            seed: 9,
            ..Default::default()
        }
        .generate();
        let shards = Partition::Iid.split(train.labels(), 4, 3, 5).unwrap();
        let zoo = vec![
            ModelSpec::Mlp { hidden: 16 },
            ModelSpec::SmallCnn { base_channels: 2 },
            ModelSpec::LeNet { scale: 0.5, deep: false },
        ];
        FedMd::new(
            &zoo,
            &train,
            &shards,
            public,
            test,
            FedMdConfig {
                rounds: 2,
                public_warmup_epochs: 1,
                private_warmup_epochs: 1,
                alignment_size: 32,
                digest_epochs: 1,
                revisit_epochs: 1,
                batch_size: 16,
                lr: 0.05,
                seed: 1,
                ..Default::default()
            },
        )
    }

    #[test]
    fn fedmd_learns_above_chance() {
        let mut fed = setup(DataFamily::Cifar100Like);
        let log = fed.run();
        assert_eq!(log.rounds.len(), 2);
        assert!(log.final_accuracy() > 0.3, "accuracy {}", log.final_accuracy());
    }

    #[test]
    fn public_labels_are_remapped() {
        let fed = setup(DataFamily::Cifar100Like);
        assert!(fed.public.labels().iter().all(|&l| l < 4));
    }

    #[test]
    fn communication_is_logit_sized_not_model_sized() {
        let mut fed = setup(DataFamily::Cifar100Like);
        let metrics = fed.round(0);
        // 3 devices × 32 alignment samples × 4 classes × 4 bytes.
        assert_eq!(metrics.upload_bytes, 3 * 32 * 4 * 4);
        assert_eq!(metrics.download_bytes, 3 * 32 * 4 * 4);
    }

    #[test]
    fn warmup_runs_once() {
        let mut fed = setup(DataFamily::Cifar100Like);
        fed.warmup();
        assert!(fed.warmed_up);
        fed.warmup(); // no panic, no double work (state flag)
        let _ = fed.round(0);
    }

    #[test]
    fn svhn_public_also_runs() {
        let mut fed = setup(DataFamily::SvhnLike);
        let log = fed.run();
        assert!(log.final_accuracy().is_finite());
    }
}
