//! The FedMD baseline (Li & Wang, 2019) — the representative
//! *data-dependent* heterogeneous-FL algorithm the paper compares against
//! in Table I and Figures 3–4.
//!
//! FedMD also lets every device choose its own architecture, but transfers
//! knowledge through a **public dataset**: each round the active devices
//! share their class scores (logits) on a public subset, the server folds
//! them one device at a time into a running consensus, and each device
//! *digests* the consensus before *revisiting* its private data. The
//! quality of the public dataset is FedMD's Achilles' heel — reproduced
//! here by running it with a similar-distribution public set
//! (`Cifar100Like`) and a different-distribution one (`SvhnLike`).
//!
//! FedMD anchors the workspace's knowledge-transfer family: Fed-ET
//! (`fedzkt_fl::FedEt`) keeps the public-set dependence but distills the
//! device ensemble into a large server-only model with diversity-weighted
//! consensus, and FedGKT (`fedzkt_fl::FedGkt`) drops the public set
//! entirely by splitting each model and exchanging per-sample
//! features/soft labels instead of logits on shared data.
//!
//! Runs under the [`Simulation`](fedzkt_fl::Simulation) driver like the
//! other algorithms: the transfer-learning warm-up happens lazily, per
//! device, the first round a device participates (a straggler that never
//! participates never trains), and the digest/revisit phases execute
//! device-parallel on the [`train_local_fleet`] worker pool.
//!
//! ## Scale model
//!
//! Unlike FedZKT, nothing in a FedMD round touches an inactive device:
//! scoring, digest and revisit all run over the active set, and the
//! consensus accumulates incrementally. Under
//! [`Materialization::Lazy`] the fleet therefore stays at
//! O(active-per-round) resident devices on non-evaluation rounds — only
//! [`prepare_eval`](FederatedAlgorithm::prepare_eval) materializes
//! everyone, and end-of-round drops all models back to
//! [`DeviceRegistry`] summaries. Lazy and eager runs are bit-identical.

use fedzkt_autograd::Var;
use fedzkt_data::Dataset;
use fedzkt_fl::{
    train_local_fleet, AlgoState, DeviceRegistry, DigestConfig, FederatedAlgorithm, FleetJob,
    LocalTrainConfig, Materialization, RoundContext, SimConfig,
};
use fedzkt_models::ModelSpec;
use fedzkt_nn::{load_state_dict, state_dict, Module, StateDict};
use fedzkt_tensor::{seeded_rng, split_seed, Tensor};
use rand::seq::SliceRandom;

/// Hyperparameters of [`FedMd`]'s update rules. Protocol-level knobs
/// (rounds, participation, seed, threads, evaluation) live in
/// [`SimConfig`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FedMdConfig {
    /// Warm-up epochs on the public dataset (transfer-learning phase).
    pub public_warmup_epochs: usize,
    /// Warm-up epochs on the private shard after the public phase.
    pub private_warmup_epochs: usize,
    /// Public samples scored per round (the "alignment set").
    pub alignment_size: usize,
    /// Epochs of consensus digestion per round.
    pub digest_epochs: usize,
    /// Epochs of private revisit per round.
    pub revisit_epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Learning rate.
    pub lr: f32,
}

impl Default for FedMdConfig {
    fn default() -> Self {
        FedMdConfig {
            public_warmup_epochs: 2,
            private_warmup_epochs: 2,
            alignment_size: 128,
            digest_epochs: 2,
            revisit_epochs: 2,
            batch_size: 32,
            lr: 0.01,
        }
    }
}

/// One simulated device: its architecture, and the model itself while the
/// device is materialized (`None` between rounds in a lazy fleet).
struct MdSlot {
    spec: ModelSpec,
    model: Option<Box<dyn Module>>,
}

/// Private shards, stored per the fleet's materialization mode.
enum MdData {
    Eager(Vec<Dataset>),
    Lazy { train: Dataset, index: Vec<Vec<usize>> },
}

impl MdData {
    fn shard_len(&self, k: usize) -> usize {
        match self {
            MdData::Eager(shards) => shards[k].len(),
            MdData::Lazy { index, .. } => index[k].len(),
        }
    }
}

/// Alignment state produced by `local_update`, consumed by
/// `server_update`.
struct Alignment {
    inputs: Tensor,
    consensus: Tensor,
}

/// A FedMD federation over heterogeneous on-device models and a public
/// dataset.
pub struct FedMd {
    cfg: FedMdConfig,
    seed: u64,
    io: (usize, usize, usize),
    mode: Materialization,
    slots: Vec<MdSlot>,
    data: MdData,
    registry: DeviceRegistry,
    /// Lazily set the first round a device participates. Lives outside the
    /// slots so it survives a lazy fleet's end-of-round release.
    warmed_up: Vec<bool>,
    /// Did the warm-up run in the round currently being accounted? The
    /// simulated clock reads `local_samples` after the phases, so the
    /// one-off warm-up compute must be charged to that round.
    warmed_this_round: Vec<bool>,
    public: Dataset,
    pending: Option<Alignment>,
}

impl FedMd {
    /// Build the federation. `public` provides the alignment inputs; its
    /// labels are taken modulo the private class count for the
    /// transfer-learning warm-up (the public task may have more classes,
    /// e.g. CIFAR-100 vs CIFAR-10). `sim` supplies the run seed and the
    /// fleet's [`Materialization`] mode.
    ///
    /// # Panics
    /// Panics when `zoo`/`shards` lengths differ or are empty, or when the
    /// public set's image geometry differs from the private one.
    pub fn new(
        zoo: &[ModelSpec],
        train: &Dataset,
        shards: &[Vec<usize>],
        public: Dataset,
        cfg: FedMdConfig,
        sim: &SimConfig,
    ) -> Self {
        assert!(!zoo.is_empty(), "need at least one device");
        assert_eq!(zoo.len(), shards.len(), "zoo/shards length mismatch");
        assert_eq!(
            (public.channels(), public.img_size()),
            (train.channels(), train.img_size()),
            "public/private image geometry mismatch"
        );
        let (channels, classes, img) = (train.channels(), train.num_classes(), train.img_size());
        // Re-label the public set into the private class space.
        let public = Dataset::new(
            public.images().clone(),
            public.labels().iter().map(|&l| l % classes).collect(),
            classes,
        );
        let (slots, data, registry) = match sim.materialization {
            Materialization::Eager => (
                zoo.iter()
                    .enumerate()
                    .map(|(i, spec)| MdSlot {
                        spec: *spec,
                        model: Some(spec.build(
                            channels,
                            classes,
                            img,
                            split_seed(sim.seed, 200 + i as u64),
                        )),
                    })
                    .collect::<Vec<_>>(),
                MdData::Eager(shards.iter().map(|idx| train.subset(idx)).collect()),
                DeviceRegistry::eager(zoo.len()),
            ),
            Materialization::Lazy => (
                zoo.iter().map(|spec| MdSlot { spec: *spec, model: None }).collect(),
                MdData::Lazy { train: train.clone(), index: shards.to_vec() },
                DeviceRegistry::new(zoo.len()),
            ),
        };
        FedMd {
            cfg,
            seed: sim.seed,
            io: (channels, classes, img),
            mode: sim.materialization,
            slots,
            data,
            registry,
            warmed_up: vec![false; zoo.len()],
            warmed_this_round: vec![false; zoo.len()],
            public,
            pending: None,
        }
    }

    /// The re-labelled public dataset.
    pub fn public(&self) -> &Dataset {
        &self.public
    }

    /// Has device `k` gone through its transfer-learning warm-up yet?
    pub fn warmed_up(&self, k: usize) -> bool {
        self.warmed_up[k]
    }

    /// Device `k`'s materialized model.
    ///
    /// # Panics
    /// Panics when the device is not resident — a lifecycle bug, since
    /// every code path that touches a model materializes it first.
    fn model(&self, k: usize) -> &dyn Module {
        self.slots[k].model.as_deref().expect("device model must be resident here")
    }

    /// Materialize device `k` if it is not already resident: run the same
    /// seeded build the eager constructor runs, then restore the stored
    /// summary, if any (the snapshot→rebuild→load round trip is lossless,
    /// so a rematerialized device is bit-identical to one held eagerly).
    fn ensure_resident(&mut self, k: usize) {
        if self.slots[k].model.is_some() {
            return;
        }
        let (channels, classes, img) = self.io;
        let model =
            self.slots[k].spec.build(channels, classes, img, split_seed(self.seed, 200 + k as u64));
        if let Some(summary) = self.registry.take_summary(k) {
            load_state_dict(model.as_ref(), &summary)
                .expect("registry summary matches device architecture");
        }
        self.slots[k].model = Some(model);
        self.registry.checkout(k);
    }

    /// Stage the private shards of `ids` for a lazy fleet's dispatch
    /// (empty in eager mode, where the shards are held permanently).
    fn stage_shards(&self, ids: &[usize]) -> Vec<Dataset> {
        match &self.data {
            MdData::Eager(_) => Vec::new(),
            MdData::Lazy { train, index } => {
                ids.iter().map(|&k| train.subset(&index[k])).collect()
            }
        }
    }

    /// The `i`-th staged shard of `ids` — from the permanent store in
    /// eager mode, from `staged` in lazy mode.
    fn shard<'a>(&'a self, staged: &'a [Dataset], ids: &[usize], i: usize) -> &'a Dataset {
        match &self.data {
            MdData::Eager(shards) => &shards[ids[i]],
            MdData::Lazy { .. } => &staged[i],
        }
    }

    /// Transfer-learning warm-up for the not-yet-warmed devices of
    /// `active`: public data, then private data, both phases in **one**
    /// device-parallel fleet dispatch (the public pass rides as the job's
    /// `pretrain`, so each cold device pays the snapshot→rebuild→load
    /// round-trip once). Lazy so stragglers that never participate stay
    /// untouched.
    fn warmup(&mut self, active: &[usize], threads: usize) {
        let cold: Vec<usize> = active.iter().copied().filter(|&k| !self.warmed_up[k]).collect();
        if cold.is_empty() {
            return;
        }
        let staged = self.stage_shards(&cold);
        let jobs: Vec<FleetJob> = cold
            .iter()
            .enumerate()
            .map(|(i, &k)| {
                let phase_cfg = |epochs: usize, seed_base: u64| LocalTrainConfig {
                    epochs,
                    batch_size: self.cfg.batch_size,
                    lr: self.cfg.lr,
                    momentum: 0.9,
                    seed: split_seed(self.seed, seed_base + k as u64),
                    ..Default::default()
                };
                FleetJob {
                    spec: self.slots[k].spec,
                    snapshot: state_dict(self.model(k)),
                    data: self.shard(&staged, &cold, i),
                    cfg: phase_cfg(self.cfg.private_warmup_epochs, 400),
                    pretrain: Some((&self.public, phase_cfg(self.cfg.public_warmup_epochs, 300))),
                    digest: None,
                    rebuild_seed: split_seed(self.seed, 0xFD_0000 + k as u64),
                }
            })
            .collect();
        let results = train_local_fleet(&jobs, self.io, threads);
        drop(jobs);
        for (&k, (_, sd)) in cold.iter().zip(results) {
            load_state_dict(self.model(k), &sd).expect("warmup result matches device architecture");
        }
        for &k in &cold {
            self.warmed_up[k] = true;
            self.warmed_this_round[k] = true;
        }
    }

    /// Size of the round's alignment subset.
    fn alignment_len(&self) -> usize {
        self.cfg.alignment_size.min(self.public.len())
    }

    /// Wrap a logit tensor as the single-tensor [`StateDict`] the wire
    /// codecs operate on.
    fn logit_payload(scores: Tensor) -> StateDict {
        StateDict { params: vec![scores], buffers: Vec::new() }
    }
}

impl FederatedAlgorithm for FedMd {
    fn devices(&self) -> usize {
        self.slots.len()
    }

    /// FedMD steps 1–3: warm up first-time participants, sample the
    /// round's alignment subset, have every active device score it, and
    /// fold the scores into the consensus one device at a time.
    fn local_update(&mut self, round: usize, active: &[usize], ctx: &mut RoundContext) -> f32 {
        self.warmed_this_round.iter_mut().for_each(|w| *w = false);
        for &k in active {
            self.ensure_resident(k);
        }
        self.warmup(active, ctx.threads());

        // 1. Server samples the alignment subset of the public data.
        let mut rng = seeded_rng(split_seed(self.seed, 500 + round as u64));
        let mut indices: Vec<usize> = (0..self.public.len()).collect();
        indices.shuffle(&mut rng);
        indices.truncate(self.alignment_len());
        let (align_x, _) = self.public.batch(&indices);
        let align_var = Var::constant(align_x.clone());

        // 2–3. Communicate and aggregate, streamed: each active device in
        // turn scores the subset, ships its logits over the wire, and the
        // server folds the *decoded* copy straight into the running
        // consensus (lossy-codec error enters it; no per-device logit set
        // is ever held). The fold accumulates in active order and divides
        // once at the end — the same op order as a batch average.
        let mut consensus: Option<Tensor> = None;
        for &k in active {
            let model = self.model(k);
            model.set_training(false);
            let scores = fedzkt_autograd::no_grad(|| model.forward(&align_var).value_clone());
            model.set_training(true);
            let (decoded, wire) = ctx.through_wire(&Self::logit_payload(scores));
            ctx.comm.record_upload(k, wire);
            let decoded = decoded.params.into_iter().next().expect("one logit tensor");
            match &mut consensus {
                None => consensus = Some(decoded),
                Some(acc) => {
                    acc.add_scaled_inplace(&decoded, 1.0).expect("logit shapes");
                }
            }
        }
        let consensus =
            consensus.expect("at least one active device").mul_scalar(1.0 / active.len() as f32);
        self.pending = Some(Alignment { inputs: align_x, consensus });

        // The loss-bearing device phase (revisit) runs after aggregation;
        // `server_update` reports it through the context.
        0.0
    }

    /// FedMD steps 4–5: broadcast the consensus, then each active device
    /// digests it and revisits its private data — both phases run
    /// device-parallel on the fleet.
    fn server_update(&mut self, round: usize, active: &[usize], ctx: &mut RoundContext) {
        let Alignment { inputs, consensus } =
            self.pending.take().expect("local_update ran this round");
        // The consensus broadcast goes through the wire once; every active
        // device digests the decoded copy and is charged its wire size.
        let (decoded, logit_wire) = ctx.through_wire(&Self::logit_payload(consensus));
        let consensus = decoded.params.into_iter().next().expect("one consensus tensor");
        let staged = self.stage_shards(active);
        let jobs: Vec<FleetJob> = active
            .iter()
            .enumerate()
            .map(|(i, &k)| FleetJob {
                spec: self.slots[k].spec,
                snapshot: state_dict(self.model(k)),
                data: self.shard(&staged, active, i),
                cfg: LocalTrainConfig {
                    epochs: self.cfg.revisit_epochs,
                    batch_size: self.cfg.batch_size,
                    lr: self.cfg.lr,
                    momentum: 0.9,
                    seed: split_seed(self.seed, 700 + (round * 31 + k) as u64),
                    ..Default::default()
                },
                pretrain: None,
                digest: Some(DigestConfig {
                    inputs: &inputs,
                    targets: &consensus,
                    epochs: self.cfg.digest_epochs,
                    batch_size: self.cfg.batch_size,
                    // The digest step matches raw logits with an ℓ1
                    // loss, whose gradients are much larger than
                    // cross-entropy's; a fraction of the base learning
                    // rate keeps it from erasing local features.
                    lr: self.cfg.lr * 0.2,
                    seed: split_seed(self.seed, 600 + (round * 31 + k) as u64),
                }),
                rebuild_seed: split_seed(self.seed, 0xB11D_0000 + (round * 31 + k) as u64),
            })
            .collect();
        let results = train_local_fleet(&jobs, self.io, ctx.threads());
        drop(jobs);
        drop(staged);
        let mut loss_sum = 0.0f32;
        for (&k, (loss, sd)) in active.iter().zip(results) {
            ctx.comm.record_download(k, logit_wire);
            loss_sum += loss;
            load_state_dict(self.model(k), &sd).expect("fleet result matches device architecture");
        }
        ctx.set_train_loss(loss_sum / active.len().max(1) as f32);
    }

    fn device_model(&self, k: usize) -> &dyn Module {
        self.model(k)
    }

    /// FedMD's payload is logit-shaped, not model-shaped: the alignment
    /// subset's class scores. (No device model needed — a lazy fleet
    /// answers this without materializing anything.)
    fn payload_template(&self, _k: usize) -> StateDict {
        Self::logit_payload(Tensor::zeros(&[self.alignment_len(), self.public.num_classes()]))
    }

    /// Digest over the alignment set plus the private revisit — and, in a
    /// device's first participating round, the one-off transfer-learning
    /// warm-up it just ran (public + private epochs).
    fn local_samples(&self, k: usize) -> usize {
        let shard = self.data.shard_len(k);
        let warmup = if self.warmed_this_round[k] {
            self.cfg.public_warmup_epochs * self.public.len()
                + self.cfg.private_warmup_epochs * shard
        } else {
            0
        };
        warmup + self.cfg.revisit_epochs * shard + self.cfg.digest_epochs * self.alignment_len()
    }

    fn construction_seed(&self) -> Option<u64> {
        Some(self.seed)
    }

    fn registry(&self) -> Option<&DeviceRegistry> {
        Some(&self.registry)
    }

    /// Evaluation borrows every device model; nothing else in a FedMD
    /// round does, so this is the only place a lazy fleet goes beyond
    /// O(active) resident devices.
    fn prepare_eval(&mut self) {
        for k in 0..self.slots.len() {
            self.ensure_resident(k);
        }
    }

    fn end_round(&mut self, _round: usize) {
        if self.mode.is_lazy() {
            for k in 0..self.slots.len() {
                if let Some(model) = self.slots[k].model.take() {
                    self.registry.store_summary(k, state_dict(model.as_ref()));
                    self.registry.release(k);
                }
            }
        }
    }

    /// What FedMD carries across rounds: every trained device model
    /// (resident or summarized — a never-warmed device rematerializes from
    /// its construction seed), the warm-up ledger, and the registry's
    /// monotone counters. `pending`/`warmed_this_round` are intra-round
    /// scratch and never survive to a checkpoint boundary; the alignment
    /// subset and consensus fold are pure functions of `(seed, round)`.
    fn save_state(&self) -> AlgoState {
        let mut state = AlgoState::new();
        for (k, slot) in self.slots.iter().enumerate() {
            if let Some(model) = &slot.model {
                state.put_dict(format!("device_{k}"), &state_dict(model.as_ref()));
            }
        }
        for (k, summary) in self.registry.summaries() {
            state.put_dict(format!("device_{k}"), summary);
        }
        state.put_words("warmed_up", self.warmed_up.iter().map(|&w| w as u64).collect());
        state.put_words(
            "registry",
            vec![self.registry.peak_resident() as u64, self.registry.touched() as u64],
        );
        state
    }

    fn load_state(&mut self, state: &AlgoState) -> Result<(), String> {
        for k in 0..self.slots.len() {
            let name = format!("device_{k}");
            if !state.has_blob(&name) {
                continue; // never trained: rematerializes from its seed
            }
            let sd = state.dict(&name)?;
            match self.mode {
                Materialization::Eager => load_state_dict(self.model(k), &sd)
                    .map_err(|e| format!("device {k}: {e}"))?,
                Materialization::Lazy => self.registry.store_summary(k, sd),
            }
        }
        let warmed = state.words("warmed_up")?;
        if warmed.len() != self.slots.len() {
            return Err(format!(
                "warm-up ledger holds {} devices, fleet has {}",
                warmed.len(),
                self.slots.len()
            ));
        }
        self.warmed_up = warmed.iter().map(|&w| w != 0).collect();
        let reg = state.words("registry")?;
        if reg.len() != 2 {
            return Err("registry counters must be [peak_resident, touched]".into());
        }
        self.registry.absorb_counters(reg[0] as usize, reg[1] as usize);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedzkt_data::{DataFamily, Partition, SynthConfig};
    use fedzkt_fl::Simulation;

    fn setup(public_family: DataFamily) -> Simulation<FedMd> {
        setup_with(public_family, SimConfig { rounds: 2, seed: 1, ..Default::default() })
    }

    fn setup_with(public_family: DataFamily, sim: SimConfig) -> Simulation<FedMd> {
        let (train, test) = SynthConfig {
            family: DataFamily::Cifar10Like,
            img: 8,
            train_n: 96,
            test_n: 48,
            classes: 4,
            seed: 3,
            ..Default::default()
        }
        .generate();
        let (public, _) = SynthConfig {
            family: public_family,
            img: 8,
            train_n: 64,
            test_n: 8,
            classes: if public_family == DataFamily::Cifar100Like { 8 } else { 4 },
            seed: 9,
            ..Default::default()
        }
        .generate();
        let shards = Partition::Iid.split(train.labels(), 4, 3, 5).unwrap();
        let zoo = vec![
            ModelSpec::Mlp { hidden: 16 },
            ModelSpec::SmallCnn { base_channels: 2 },
            ModelSpec::LeNet { scale: 0.5, deep: false },
        ];
        let fed = FedMd::new(
            &zoo,
            &train,
            &shards,
            public,
            FedMdConfig {
                public_warmup_epochs: 1,
                private_warmup_epochs: 1,
                alignment_size: 32,
                digest_epochs: 1,
                revisit_epochs: 1,
                batch_size: 16,
                lr: 0.05,
            },
            &sim,
        );
        Simulation::builder(fed, test, sim).build()
    }

    #[test]
    fn fedmd_learns_above_chance() {
        let mut sim = setup(DataFamily::Cifar100Like);
        let log = sim.run();
        assert_eq!(log.rounds.len(), 2);
        assert!(log.final_accuracy() > 0.3, "accuracy {}", log.final_accuracy());
    }

    #[test]
    fn public_labels_are_remapped() {
        let sim = setup(DataFamily::Cifar100Like);
        assert!(sim.algorithm().public().labels().iter().all(|&l| l < 4));
    }

    #[test]
    fn communication_is_logit_sized_not_model_sized() {
        use fedzkt_fl::{CodecSpec, PayloadCodec};
        let mut sim = setup(DataFamily::Cifar100Like);
        let metrics = sim.round(0);
        // 3 devices × the raw wire size of a 32-sample × 4-class logit
        // payload (4 bytes a value + the self-describing header).
        let wire = CodecSpec::Raw.wire_bytes(&sim.algorithm().payload_template(0)) as u64;
        assert_eq!(wire, 19 + 32 * 4 * 4, "one [32,4] tensor behind a 19-byte header");
        assert_eq!(metrics.upload_bytes, 3 * wire);
        assert_eq!(metrics.download_bytes, 3 * wire);
    }

    #[test]
    fn warmup_is_lazy_and_runs_once() {
        let mut sim = setup(DataFamily::Cifar100Like);
        assert!((0..3).all(|k| !sim.algorithm().warmed_up(k)));
        sim.round(0);
        assert!((0..3).all(|k| sim.algorithm().warmed_up(k)));
        // A second round with everyone already warm: models keep training
        // (no panic, no re-warmup divergence across identical runs).
        sim.round(1);
    }

    #[test]
    fn straggler_is_never_warmed_up() {
        // participation 0.34 of 3 devices → exactly 1 active per round.
        let mut sim = setup_with(
            DataFamily::Cifar100Like,
            SimConfig { rounds: 1, participation: 0.34, seed: 1, ..Default::default() },
        );
        let metrics = sim.round(0);
        assert_eq!(metrics.active_devices.len(), 1);
        for k in 0..3 {
            assert_eq!(
                sim.algorithm().warmed_up(k),
                metrics.active_devices.contains(&k),
                "device {k}"
            );
        }
    }

    #[test]
    fn warmup_compute_is_charged_to_the_first_round() {
        use fedzkt_fl::FederatedAlgorithm as _;
        let mut sim = setup(DataFamily::Cifar100Like);
        sim.round(0);
        // Warm-up just ran: round-0 accounting includes it.
        let first = sim.algorithm().local_samples(0);
        sim.round(1);
        let steady = sim.algorithm().local_samples(0);
        // Steady state is shard×1 revisit epoch + 32×1 digest epoch; the
        // first round adds public(64)×1 + shard×1 of warm-up. Eliminating
        // the shard size: first = 2·steady + 64 − 32.
        assert!(first > steady, "warm-up compute must be charged: {first} vs {steady}");
        assert_eq!(first, 2 * steady + 32);
    }

    #[test]
    fn svhn_public_also_runs() {
        let mut sim = setup(DataFamily::SvhnLike);
        let log = sim.run();
        assert!(log.final_accuracy().is_finite());
    }

    #[test]
    fn lazy_run_is_bit_identical_to_eager() {
        let run = |mode: Materialization| {
            let mut sim = setup_with(
                DataFamily::Cifar100Like,
                SimConfig {
                    rounds: 2,
                    participation: 0.67,
                    seed: 1,
                    materialization: mode,
                    ..Default::default()
                },
            );
            sim.run().to_json()
        };
        let mut eager = run(Materialization::Eager);
        let mut lazy = run(Materialization::Lazy);
        // The residency gauge is the one *intentionally* mode-dependent
        // column; every other logged bit must agree.
        for log in [&mut eager, &mut lazy] {
            *log = log
                .split("\"peak_resident_devices\":")
                .map(|part| match part.find('}') {
                    Some(i) => &part[i..],
                    None => part,
                })
                .collect();
        }
        assert_eq!(eager, lazy, "lazy FedMD diverged from eager");
    }

    #[test]
    fn checkpoint_resume_matches_the_uninterrupted_run_bit_for_bit() {
        for mode in [Materialization::Eager, Materialization::Lazy] {
            // Partial participation so a straggler's warm-up ledger has to
            // survive the checkpoint boundary.
            let sim_cfg = SimConfig {
                rounds: 2,
                participation: 0.67,
                seed: 1,
                materialization: mode,
                ..Default::default()
            };
            let reference = setup_with(DataFamily::Cifar100Like, sim_cfg).run().clone();
            let mut first = setup_with(DataFamily::Cifar100Like, sim_cfg);
            first.round(0);
            // Through the serialized form, as a real kill/restart would go.
            let ck = fedzkt_fl::SimCheckpoint::from_json(&first.checkpoint().to_json()).unwrap();
            drop(first);
            let mut resumed = setup_with(DataFamily::Cifar100Like, sim_cfg);
            resumed.resume_from(&ck).expect("resume");
            let log = resumed.run().clone();
            assert_eq!(log.to_json(), reference.to_json(), "mode {mode:?}");
        }
    }

    #[test]
    fn lazy_fleet_stays_at_the_active_count_without_eval() {
        // 2 of 3 active, evaluation off (and round 0 is not the final
        // round, which always evaluates): the whole round runs at
        // O(active) resident devices and ends at zero.
        let mut sim = setup_with(
            DataFamily::Cifar100Like,
            SimConfig {
                rounds: 2,
                participation: 0.67,
                seed: 1,
                eval_every: 0,
                materialization: Materialization::Lazy,
                ..Default::default()
            },
        );
        sim.round(0);
        let reg = sim.algorithm().registry().expect("fedmd exposes its registry");
        assert_eq!(reg.resident(), 0);
        assert_eq!(reg.peak_resident(), 2, "eval off → peak stays at the active count");
    }
}
