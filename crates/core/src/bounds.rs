//! Per-device performance bounds (Table III).
//!
//! * **Lower bound**: the on-device model trained on its own shard only —
//!   what a device achieves without any federation.
//! * **Upper bound**: the same architecture trained on the union of all
//!   shards — what the device could achieve if every peer's data were
//!   centralised.
//!
//! The paper reads FedZKT's success off the gap: per-device accuracy after
//! federation approaches the upper bound.

use fedzkt_data::Dataset;
use fedzkt_fl::{evaluate, train_local, LocalTrainConfig};
use fedzkt_models::ModelSpec;
use fedzkt_tensor::split_seed;

/// Configuration shared by both bound trainers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundConfig {
    /// Training epochs (paper: 100 for CIFAR-10).
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// SGD learning rate.
    pub lr: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// SGD weight decay (paper: 5e-4).
    pub weight_decay: f32,
    /// Evaluation batch size.
    pub eval_batch: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for BoundConfig {
    fn default() -> Self {
        BoundConfig {
            epochs: 10,
            batch_size: 32,
            lr: 0.01,
            momentum: 0.9,
            weight_decay: 5e-4,
            eval_batch: 64,
            seed: 0,
        }
    }
}

fn train_and_eval(spec: ModelSpec, train: &Dataset, test: &Dataset, cfg: &BoundConfig) -> f32 {
    let model = spec.build(
        train.channels(),
        train.num_classes(),
        train.img_size(),
        split_seed(cfg.seed, 0xB0),
    );
    train_local(
        model.as_ref(),
        train,
        &LocalTrainConfig {
            epochs: cfg.epochs,
            batch_size: cfg.batch_size,
            lr: cfg.lr,
            momentum: cfg.momentum,
            weight_decay: cfg.weight_decay,
            prox_mu: 0.0,
            seed: split_seed(cfg.seed, 0xB1),
        },
    );
    evaluate(model.as_ref(), test, cfg.eval_batch)
}

/// Lower bound: train `spec` on `shard` alone and return test accuracy.
pub fn local_only_bound(
    spec: ModelSpec,
    shard: &Dataset,
    test: &Dataset,
    cfg: &BoundConfig,
) -> f32 {
    train_and_eval(spec, shard, test, cfg)
}

/// Upper bound: train `spec` on the union of all shards (centralised data)
/// and return test accuracy.
pub fn centralized_bound(
    spec: ModelSpec,
    shards: &[&Dataset],
    test: &Dataset,
    cfg: &BoundConfig,
) -> f32 {
    let union = Dataset::concat(shards);
    train_and_eval(spec, &union, test, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedzkt_data::{DataFamily, Partition, SynthConfig};

    #[test]
    fn upper_bound_beats_lower_bound() {
        let (train, test) = SynthConfig {
            family: DataFamily::MnistLike,
            img: 8,
            train_n: 160,
            test_n: 80,
            classes: 4,
            seed: 2,
            ..Default::default()
        }
        .generate();
        // Skewed shards make local-only visibly worse.
        let shards = Partition::QuantitySkew { classes_per_device: 2 }
            .split(train.labels(), 4, 4, 3)
            .unwrap();
        let datasets: Vec<Dataset> = shards.iter().map(|s| train.subset(s)).collect();
        let refs: Vec<&Dataset> = datasets.iter().collect();
        let spec = ModelSpec::SmallCnn { base_channels: 4 };
        let cfg = BoundConfig { epochs: 6, lr: 0.05, seed: 5, ..Default::default() };
        let lower = local_only_bound(spec, &datasets[0], &test, &cfg);
        let upper = centralized_bound(spec, &refs, &test, &cfg);
        assert!(
            upper > lower + 0.1,
            "centralised {upper} should clearly beat local-only {lower}"
        );
    }
}
