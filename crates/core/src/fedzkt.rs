//! The FedZKT orchestrator (Algorithms 1–3 of the paper), as a
//! [`FederatedAlgorithm`] run by the [`Simulation`](fedzkt_fl::Simulation)
//! driver.
//!
//! ## Scale model
//!
//! Under [`Materialization::Lazy`] the federation holds devices as
//! [`DeviceRegistry`] summaries and materializes them on demand: active
//! devices for the local update, and — because the zero-shot distillation
//! game uses **every** device model as a teacher (the ensemble of Eq. 2),
//! and evaluation borrows every device model — the whole fleet for the
//! server phase and for evaluation rounds. Everything is dropped back to
//! summaries at end of round, so the *between-rounds* footprint is O(1),
//! but FedZKT's in-round peak is inherently O(fleet); the strict
//! O(sampled) peak belongs to stateless-device algorithms (FedAvg/
//! FedProx). Lazy and eager runs are bit-identical: a first
//! materialization runs the same seeded build as the eager constructor,
//! and a re-materialization restores the stored summary through the
//! lossless snapshot→rebuild→load round trip.

use crate::{FedZktConfig, GradNormProbe};
use fedzkt_autograd::loss::kl_div_probs;
use fedzkt_autograd::{no_grad, Var};
use fedzkt_data::Dataset;
use fedzkt_fl::{
    train_local_fleet, AlgoState, DeviceRegistry, FederatedAlgorithm, FleetJob, LocalTrainConfig,
    Materialization, RoundContext, SimConfig,
};
use fedzkt_models::{Generator, ModelSpec};
use fedzkt_nn::{
    load_state_dict, state_dict, Adam, AdamConfig, Module, MultiStepLr, Optimizer, Sgd,
    SgdConfig, StateDict,
};
use fedzkt_tensor::compute::with_format;
use fedzkt_tensor::{seeded_rng, split_seed, ComputeFormat, Prng, Tensor};

/// One simulated device: an architecture chosen independently of its peers
/// (the paper's core premise). The model is `None` while the device is not
/// materialized (lazy fleets, between rounds).
struct DeviceSlot {
    spec: ModelSpec,
    model: Option<Box<dyn Module>>,
}

/// Device shards, stored per the fleet's materialization mode.
enum DeviceData {
    Eager(Vec<Dataset>),
    Lazy { train: Dataset, index: Vec<Vec<usize>> },
}

impl DeviceData {
    fn shard_len(&self, k: usize) -> usize {
        match self {
            DeviceData::Eager(shards) => shards[k].len(),
            DeviceData::Lazy { index, .. } => index[k].len(),
        }
    }
}

/// The FedZKT federated-learning algorithm.
///
/// See the crate docs for the protocol; construct with [`FedZkt::new`] and
/// run it under a [`Simulation`](fedzkt_fl::Simulation):
///
/// ```no_run
/// # use fedzkt_core::{FedZkt, FedZktConfig};
/// # use fedzkt_data::{DataFamily, Partition, SynthConfig};
/// # use fedzkt_fl::{SimConfig, Simulation};
/// # use fedzkt_models::ModelSpec;
/// # let (train, test) = SynthConfig { family: DataFamily::MnistLike, ..Default::default() }.generate();
/// # let shards = Partition::Iid.split(train.labels(), train.num_classes(), 5, 1).unwrap();
/// # let zoo = ModelSpec::assign_round_robin(&ModelSpec::paper_zoo_small(), 5);
/// let sim_cfg = SimConfig::default();
/// let fed = FedZkt::new(&zoo, &train, &shards, FedZktConfig::default(), &sim_cfg);
/// let mut sim = Simulation::builder(fed, test, sim_cfg).build();
/// let log = sim.run();
/// ```
pub struct FedZkt {
    cfg: FedZktConfig,
    seed: u64,
    /// Data geometry `(channels, classes, img_size)`; worker threads rebuild
    /// device models against it during the parallel device update.
    io: (usize, usize, usize),
    mode: Materialization,
    /// Compute format for the game's tape-free scoring passes (teacher
    /// ensemble + generator forwards, global-model transfer probabilities).
    /// Gradient-bearing steps always run f32.
    compute: ComputeFormat,
    slots: Vec<DeviceSlot>,
    data: DeviceData,
    registry: DeviceRegistry,
    global: Box<dyn Module>,
    generator: Generator,
    generator_opt: Adam,
    probe: GradNormProbe,
    rng: Prng,
}

impl FedZkt {
    /// Build the federation.
    ///
    /// * `zoo[i]` — architecture of device `i` (heterogeneous by design);
    /// * `shards[i]` — index set of device `i`'s private data in `train`;
    /// * `sim` — the protocol config (supplies the run seed and the
    ///   fleet's [`Materialization`] mode).
    ///
    /// # Panics
    /// Panics when `zoo`/`shards` lengths differ or are empty.
    pub fn new(
        zoo: &[ModelSpec],
        train: &Dataset,
        shards: &[Vec<usize>],
        cfg: FedZktConfig,
        sim: &SimConfig,
    ) -> Self {
        assert!(!zoo.is_empty(), "need at least one device");
        assert_eq!(zoo.len(), shards.len(), "zoo/shards length mismatch");
        let seed = sim.seed;
        let (channels, classes, img) = (train.channels(), train.num_classes(), train.img_size());
        // Footnote 1 of Algorithm 1: all models Glorot-initialised; the
        // same initialisation is not required across devices, so each
        // device gets its own stream. Lazy fleets run the identical build
        // on first materialization instead.
        let (slots, data, registry) = match sim.materialization {
            Materialization::Eager => (
                zoo.iter()
                    .enumerate()
                    .map(|(i, spec)| DeviceSlot {
                        spec: *spec,
                        model: Some(spec.build(
                            channels,
                            classes,
                            img,
                            split_seed(seed, 100 + i as u64),
                        )),
                    })
                    .collect::<Vec<_>>(),
                DeviceData::Eager(shards.iter().map(|idx| train.subset(idx)).collect()),
                DeviceRegistry::eager(zoo.len()),
            ),
            Materialization::Lazy => (
                zoo.iter().map(|spec| DeviceSlot { spec: *spec, model: None }).collect(),
                DeviceData::Lazy { train: train.clone(), index: shards.to_vec() },
                DeviceRegistry::new(zoo.len()),
            ),
        };
        let global = cfg.global_model.build(channels, classes, img, split_seed(seed, 7));
        let generator = cfg.generator.build(channels, img, split_seed(seed, 8));
        let generator_opt = Adam::new(
            generator.params(),
            AdamConfig { lr: cfg.generator_lr, ..Default::default() },
        );
        FedZkt {
            cfg,
            seed,
            io: (channels, classes, img),
            mode: sim.materialization,
            compute: sim.compute,
            slots,
            data,
            registry,
            global,
            generator,
            generator_opt,
            probe: GradNormProbe::new(),
            rng: seeded_rng(split_seed(seed, 10)),
        }
    }

    /// The architecture of device `k`.
    ///
    /// # Panics
    /// Panics when `k` is out of range.
    pub fn device_spec(&self, k: usize) -> ModelSpec {
        self.slots[k].spec
    }

    /// The server-side generator `G`.
    pub fn generator(&self) -> &Generator {
        &self.generator
    }

    /// The Figure-2 gradient-norm probe (populated when
    /// `cfg.probe_grad_norms` is set).
    pub fn probe(&self) -> &GradNormProbe {
        &self.probe
    }

    /// Device `k`'s materialized model.
    ///
    /// # Panics
    /// Panics when the device is not resident — a lifecycle bug, since
    /// every code path that touches a model materializes it first.
    fn model(&self, k: usize) -> &dyn Module {
        self.slots[k].model.as_deref().expect("device model must be resident here")
    }

    /// Every device model, in device order (all must be resident).
    fn models(&self) -> impl Iterator<Item = &dyn Module> {
        self.slots
            .iter()
            .map(|s| s.model.as_deref().expect("device model must be resident here"))
    }

    /// Materialize device `k` if it is not already resident: run the same
    /// seeded build the eager constructor runs, then restore the stored
    /// summary, if any (the snapshot→rebuild→load round trip is lossless,
    /// so a rematerialized device is bit-identical to one held eagerly).
    fn ensure_resident(&mut self, k: usize) {
        if self.slots[k].model.is_some() {
            return;
        }
        let (channels, classes, img) = self.io;
        let model =
            self.slots[k].spec.build(channels, classes, img, split_seed(self.seed, 100 + k as u64));
        if let Some(summary) = self.registry.take_summary(k) {
            load_state_dict(model.as_ref(), &summary)
                .expect("registry summary matches device architecture");
        }
        self.slots[k].model = Some(model);
        self.registry.checkout(k);
    }

    /// Materialize the whole fleet (the distillation game's teacher
    /// ensemble and the evaluation pass borrow every device model).
    fn ensure_all_resident(&mut self) {
        for k in 0..self.slots.len() {
            self.ensure_resident(k);
        }
    }

    /// Drop every resident device back to its registry summary (lazy mode
    /// only; an eager fleet stays materialized for the whole run).
    fn release_all(&mut self) {
        for k in 0..self.slots.len() {
            if let Some(model) = self.slots[k].model.take() {
                self.registry.store_summary(k, state_dict(model.as_ref()));
                self.registry.release(k);
            }
        }
    }

    /// Algorithm 3: the zero-shot distillation game followed by the
    /// bidirectional transfer. Teachers run in eval mode (their running
    /// statistics must not absorb synthetic data).
    fn distillation_game(&mut self, active: &[usize]) {
        let n_d = self.cfg.distill_iters;
        if n_d == 0 {
            return;
        }
        let gen_schedule = MultiStepLr::paper_schedule(self.cfg.generator_lr, n_d);
        let server_schedule = MultiStepLr::paper_schedule(self.cfg.server_lr, n_d);
        let global_opt = Sgd::new(
            self.global.params(),
            SgdConfig { lr: self.cfg.server_lr, momentum: 0.9, weight_decay: 0.0 },
        );
        for m in self.models() {
            m.set_training(false);
        }
        self.global.set_training(true);
        self.generator.set_training(true);

        // ---- Knowledge transfer: devices -> global model (Eq. 2) ----
        for iter in 0..n_d {
            gen_schedule.apply(&self.generator_opt, iter);
            server_schedule.apply(&global_opt, iter);

            // Generator step: maximise disagreement. Gradients flow through
            // the student AND the teachers into x = G(z), then into θ.
            self.generator_opt.zero_grad();
            let z = Var::constant(self.generator.sample_z(self.cfg.distill_batch, &mut self.rng));
            let x = self.generator.forward(&z);
            let student = self.global.forward(&x);
            let teacher_logits: Vec<Var> = self.models().map(|m| m.forward(&x)).collect();
            let teacher_refs: Vec<&Var> = teacher_logits.iter().collect();
            let l_g = self.cfg.loss.eval(&student, &teacher_refs).neg();
            l_g.backward();
            self.generator_opt.step();
            // Discard gradients the generator step deposited on the student
            // and teachers (their optimizers must not see them).
            for p in self.global.params() {
                p.zero_grad();
            }
            self.clear_device_grads();

            // Global-model step: minimise disagreement on a fresh batch.
            // x is fixed here, so the generator and teachers run without
            // tape and the teacher signal enters as constants.
            global_opt.zero_grad();
            let z = Var::constant(self.generator.sample_z(self.cfg.distill_batch, &mut self.rng));
            // Tape-free, so the configured compute format applies: under
            // int8 the generator and every teacher forward run the integer
            // kernels. The student's training step below stays f32.
            let (x, teacher_logits) = with_format(self.compute, || {
                no_grad(|| {
                    let x = self.generator.forward(&z);
                    let t: Vec<Tensor> =
                        self.models().map(|m| m.forward(&x).value_clone()).collect();
                    (x.value_clone(), t)
                })
            });
            let x = Var::constant(x);
            let student = self.global.forward(&x);
            let teacher_vars: Vec<Var> = teacher_logits.into_iter().map(Var::constant).collect();
            let teacher_refs: Vec<&Var> = teacher_vars.iter().collect();
            let l_s = self.cfg.loss.eval(&student, &teacher_refs);
            l_s.backward();
            global_opt.step();
        }

        // ---- Knowledge transfer: global model -> on-device models (Eq. 8) ----
        // The well-trained generator is reused; the KL loss distills the
        // (fixed) global model into each active device's architecture.
        self.global.set_training(false);
        // Device models distill in train mode, as in the data-free
        // distillation literature the paper builds on: batch statistics of
        // the generated batch normalise the student's activations while it
        // absorbs the central knowledge. (The subsequent DeviceUpdate on
        // real data re-estimates the running statistics.)
        let transfer_schedule =
            MultiStepLr::paper_schedule(self.cfg.transfer_lr, self.cfg.transfer_iters.max(1));
        let device_opts: Vec<(usize, Sgd)> = active
            .iter()
            .map(|&k| {
                self.model(k).set_training(true);
                (
                    k,
                    Sgd::new(
                        self.model(k).params(),
                        SgdConfig { lr: self.cfg.transfer_lr, momentum: 0.9, weight_decay: 0.0 },
                    ),
                )
            })
            .collect();
        // Ablation: optionally replace the trained generator with a fresh
        // random one for this phase (cfg.fresh_generator_for_transfer).
        let fresh_generator = self.cfg.fresh_generator_for_transfer.then(|| {
            self.cfg.generator.build(self.io.0, self.io.2, split_seed(self.seed, 0xF4E5))
        });
        let transfer_generator: &Generator = fresh_generator.as_ref().unwrap_or(&self.generator);
        for iter in 0..self.cfg.transfer_iters {
            let z =
                Var::constant(transfer_generator.sample_z(self.cfg.distill_batch, &mut self.rng));
            // Tape-free teacher side of Eq. 8 — compute-format scoped like
            // the game's scoring pass; the per-device student steps below
            // carry gradients and stay f32.
            let (x, global_probs) = with_format(self.compute, || {
                no_grad(|| {
                    let x = transfer_generator.forward(&z);
                    let p = self.global.forward(&x).softmax().value_clone();
                    (x.value_clone(), p)
                })
            });
            let x = Var::constant(x);
            let teacher_probs = Var::constant(global_probs);
            for (k, opt) in &device_opts {
                transfer_schedule.apply(opt, iter);
                opt.zero_grad();
                let student_probs = self.model(*k).forward(&x).softmax();
                // Eq. 8 with KL loss: minimise KL(F ‖ f'_k) over f'_k.
                let loss = kl_div_probs(&teacher_probs, &student_probs);
                loss.backward();
                opt.step();
            }
        }
        self.global.set_training(true);
        for m in self.models() {
            m.set_training(true);
        }
    }

    fn clear_device_grads(&self) {
        for m in self.models() {
            for p in m.params() {
                p.zero_grad();
            }
        }
    }
}

impl FederatedAlgorithm for FedZkt {
    fn devices(&self) -> usize {
        self.slots.len()
    }

    /// On-device update (Algorithm 2). Devices are independent (the
    /// paper's premise), so the active set trains as a fleet on worker
    /// threads: each worker rebuilds its device's model from a snapshot
    /// (the tape is thread-local), trains on the device's own `split_seed`
    /// stream, and results are merged back in device order — bit-identical
    /// for any thread count.
    fn local_update(&mut self, round: usize, active: &[usize], ctx: &mut RoundContext) -> f32 {
        for &k in active {
            self.ensure_resident(k);
        }
        // Lazy fleet: slice the active shards for the duration of the
        // dispatch.
        let staged: Vec<Dataset> = match &self.data {
            DeviceData::Eager(_) => Vec::new(),
            DeviceData::Lazy { train, index } => {
                active.iter().map(|&k| train.subset(&index[k])).collect()
            }
        };
        let jobs: Vec<FleetJob> = active
            .iter()
            .enumerate()
            .map(|(i, &k)| FleetJob {
                spec: self.slots[k].spec,
                snapshot: state_dict(self.model(k)),
                data: match &self.data {
                    DeviceData::Eager(shards) => &shards[k],
                    DeviceData::Lazy { .. } => &staged[i],
                },
                cfg: LocalTrainConfig {
                    epochs: self.cfg.local_epochs,
                    batch_size: self.cfg.device_batch,
                    lr: self.cfg.device_lr,
                    momentum: self.cfg.device_momentum,
                    weight_decay: 0.0,
                    prox_mu: self.cfg.prox_mu,
                    seed: split_seed(self.seed, (round * 1009 + k) as u64),
                },
                pretrain: None,
                digest: None,
                rebuild_seed: split_seed(self.seed, 0xB11D_0000 + (round * 1009 + k) as u64),
            })
            .collect();
        let results = train_local_fleet(&jobs, self.io, ctx.threads());
        drop(jobs);
        drop(staged);
        let mut loss_sum = 0.0f32;
        for (&k, (loss, sd)) in active.iter().zip(results) {
            loss_sum += loss;
            // Upload ŵ_k: the device's own (small) parameters only, pushed
            // through the round's wire codec — the server distills from
            // what it *received*, so lossy-codec error reaches the game
            // (a lossless codec receives the fleet result verbatim).
            if ctx.lossless() {
                ctx.comm.record_upload(k, ctx.wire_size(&sd));
                load_state_dict(self.model(k), &sd)
                    .expect("fleet result matches device architecture");
            } else {
                let (uploaded, wire) = ctx.through_wire(&sd);
                ctx.comm.record_upload(k, wire);
                load_state_dict(self.model(k), &uploaded)
                    .expect("fleet result matches device architecture");
            }
        }
        loss_sum / active.len().max(1) as f32
    }

    /// Server update (Algorithm 3) and the transfer of `w_k` back to the
    /// active devices (Algorithm 1, line 12).
    fn server_update(&mut self, round: usize, active: &[usize], ctx: &mut RoundContext) {
        // The game's teacher ensemble (and the Figure-2 probe) forward
        // every device model, so the whole fleet must be resident for the
        // server phase — the received ŵ_k are fed into the game's teacher
        // list one device at a time; what a lazy fleet saves is the
        // *between-rounds* footprint, not FedZKT's in-game ensemble.
        if self.cfg.distill_iters > 0 || self.cfg.probe_grad_norms {
            self.ensure_all_resident();
        }
        self.distillation_game(active);

        // Charge the game's compute to the simulated clock: the generator
        // and student each see one generated batch per distillation
        // iteration, plus one per transfer iteration (Eq. 8).
        let server_batches = 2 * self.cfg.distill_iters + self.cfg.transfer_iters;
        let server_samples = (server_batches * self.cfg.distill_batch) as f64;
        ctx.add_server_seconds(server_samples / self.cfg.server_samples_per_sec as f64);

        // Figure-2 probe: measured after the adversarial game so it sees
        // the current F / f_ens disagreement landscape.
        if self.cfg.probe_grad_norms {
            // Dedicated RNG stream: probing must not shift the training
            // run's random sequence.
            let mut probe_rng = seeded_rng(split_seed(self.seed, 0xF160 + round as u64));
            let z = self.generator.sample_z(self.cfg.distill_batch.min(16), &mut probe_rng);
            let x = no_grad(|| self.generator.forward(&Var::constant(z))).value_clone();
            let teachers: Vec<&dyn Module> = self
                .slots
                .iter()
                .map(|s| s.model.as_deref().expect("fleet is resident for the probe"))
                .collect();
            self.probe.measure(round + 1, self.global.as_ref(), &teachers, &x);
        }

        // Transfer w_k back (Algorithm 1, line 12): each active device
        // receives its own updated model over the wire, and keeps the
        // *decoded* state — under a lossy codec the device trains next
        // round from the quantized/sparsified transfer it actually got.
        // A bit-exact codec makes the transfer a pure accounting event,
        // so the decode-and-reload is skipped.
        for &k in active {
            let model = self.model(k);
            if ctx.lossless() {
                // Shape-only accounting: no snapshot, no reload.
                ctx.comm.record_download(k, ctx.module_wire_size(model));
            } else {
                let (received, wire) = ctx.through_wire(&state_dict(model));
                ctx.comm.record_download(k, wire);
                load_state_dict(model, &received)
                    .expect("wire round-trip preserves the device architecture");
            }
        }
    }

    fn device_model(&self, k: usize) -> &dyn Module {
        self.model(k)
    }

    fn global_model(&self) -> Option<&dyn Module> {
        Some(self.global.as_ref())
    }

    /// The O(|w_k|) claim: device `k` only ever exchanges its own model.
    /// (Shapes are what matter here; a non-resident device answers from
    /// its summary, or from a fresh seeded build if it never trained.)
    fn payload_template(&self, k: usize) -> StateDict {
        if let Some(model) = &self.slots[k].model {
            return state_dict(model.as_ref());
        }
        if let Some(summary) = self.registry.summary(k) {
            return summary.clone();
        }
        let (channels, classes, img) = self.io;
        let model =
            self.slots[k].spec.build(channels, classes, img, split_seed(self.seed, 100 + k as u64));
        state_dict(model.as_ref())
    }

    fn local_samples(&self, k: usize) -> usize {
        self.cfg.local_epochs * self.data.shard_len(k)
    }

    fn construction_seed(&self) -> Option<u64> {
        Some(self.seed)
    }

    fn registry(&self) -> Option<&DeviceRegistry> {
        Some(&self.registry)
    }

    /// Evaluation borrows every device model, so a lazy fleet materializes
    /// the stragglers too (a no-op right after a server phase that ran the
    /// game, which already made everything resident).
    fn prepare_eval(&mut self) {
        self.ensure_all_resident();
    }

    fn end_round(&mut self, _round: usize) {
        if self.mode.is_lazy() {
            self.release_all();
        }
    }

    /// Everything Algorithms 1–3 mutate across rounds: the global model,
    /// the generator and its Adam moments, the shared distillation RNG
    /// cursor, every trained device model (resident or summarized — a
    /// never-trained device has no entry and rematerializes from its
    /// construction seed), and the registry's monotone counters. The
    /// Figure-2 probe is a diagnostic side channel and is deliberately
    /// not checkpointed: its records never feed back into training or
    /// the `RunLog`.
    fn save_state(&self) -> AlgoState {
        let mut state = AlgoState::new();
        state.put_dict("global", &state_dict(self.global.as_ref()));
        state.put_dict("generator", &state_dict(&self.generator));
        let (t, moments) = self.generator_opt.export_state();
        let mut mask = Vec::with_capacity(moments.len());
        let mut packed = StateDict { params: Vec::new(), buffers: Vec::new() };
        for entry in moments {
            match entry {
                Some((m, v)) => {
                    mask.push(1);
                    packed.params.push(m);
                    packed.params.push(v);
                }
                None => mask.push(0),
            }
        }
        state.put_words("adam", vec![t]);
        state.put_words("adam_mask", mask);
        state.put_dict("adam_moments", &packed);
        state.put_words("rng", self.rng.state().to_vec());
        for (k, slot) in self.slots.iter().enumerate() {
            if let Some(model) = &slot.model {
                state.put_dict(format!("device_{k}"), &state_dict(model.as_ref()));
            }
        }
        // Non-resident trained devices live as registry summaries; the
        // walk is O(touched), so a million-device checkpoint stays
        // O(trained), not O(registered).
        for (k, summary) in self.registry.summaries() {
            state.put_dict(format!("device_{k}"), summary);
        }
        state.put_words(
            "registry",
            vec![self.registry.peak_resident() as u64, self.registry.touched() as u64],
        );
        state
    }

    fn load_state(&mut self, state: &AlgoState) -> Result<(), String> {
        load_state_dict(self.global.as_ref(), &state.dict("global")?)
            .map_err(|e| format!("global model: {e}"))?;
        load_state_dict(&self.generator, &state.dict("generator")?)
            .map_err(|e| format!("generator: {e}"))?;
        let t = state.words("adam")?.first().copied().ok_or("empty \"adam\" entry")?;
        let mask = state.words("adam_mask")?;
        let mut packed = state.dict("adam_moments")?.params.into_iter();
        let mut moments = Vec::with_capacity(mask.len());
        for &m in mask {
            moments.push(if m != 0 {
                match (packed.next(), packed.next()) {
                    (Some(first), Some(second)) => Some((first, second)),
                    _ => return Err("truncated \"adam_moments\"".into()),
                }
            } else {
                None
            });
        }
        self.generator_opt
            .import_state(t, moments)
            .map_err(|e| format!("generator optimizer: {e}"))?;
        let rng: [u64; 4] = state
            .words("rng")?
            .try_into()
            .map_err(|_| "\"rng\" must hold 4 words".to_string())?;
        if rng.iter().all(|&w| w == 0) {
            return Err("all-zero RNG state".into());
        }
        self.rng = Prng::from_state(rng);
        for k in 0..self.slots.len() {
            let name = format!("device_{k}");
            if !state.has_blob(&name) {
                continue; // never trained: rematerializes from its seed
            }
            let sd = state.dict(&name)?;
            match self.mode {
                Materialization::Eager => load_state_dict(self.model(k), &sd)
                    .map_err(|e| format!("device {k}: {e}"))?,
                Materialization::Lazy => self.registry.store_summary(k, sd),
            }
        }
        let reg = state.words("registry")?;
        if reg.len() != 2 {
            return Err("registry counters must be [peak_resident, touched]".into());
        }
        self.registry.absorb_counters(reg[0] as usize, reg[1] as usize);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedzkt_autograd::DistillLoss;
    use fedzkt_data::{DataFamily, Partition, SynthConfig};
    use fedzkt_fl::Simulation;
    use fedzkt_models::GeneratorSpec;

    fn tiny_setup(cfg: FedZktConfig, sim: SimConfig) -> Simulation<FedZkt> {
        let (train, test) = SynthConfig {
            family: DataFamily::MnistLike,
            img: 8,
            train_n: 96,
            test_n: 48,
            classes: 4,
            seed: 3,
            ..Default::default()
        }
        .generate();
        let shards = Partition::Iid.split(train.labels(), 4, 3, 5).unwrap();
        let zoo = vec![
            ModelSpec::Mlp { hidden: 16 },
            ModelSpec::SmallCnn { base_channels: 2 },
            ModelSpec::LeNet { scale: 0.5, deep: false },
        ];
        let fed = FedZkt::new(&zoo, &train, &shards, cfg, &sim);
        Simulation::builder(fed, test, sim).build()
    }

    fn tiny_cfg() -> FedZktConfig {
        FedZktConfig {
            local_epochs: 2,
            distill_iters: 4,
            transfer_iters: 4,
            device_batch: 16,
            distill_batch: 8,
            device_lr: 0.05,
            generator: GeneratorSpec { z_dim: 16, ngf: 4 },
            global_model: ModelSpec::SmallCnn { base_channels: 4 },
            ..Default::default()
        }
    }

    fn tiny_sim() -> SimConfig {
        SimConfig { rounds: 2, seed: 1, ..Default::default() }
    }

    #[test]
    fn runs_heterogeneous_round_and_improves() {
        let mut sim = tiny_setup(tiny_cfg(), SimConfig { rounds: 3, ..tiny_sim() });
        let log = sim.run();
        assert_eq!(log.rounds.len(), 3);
        // Above-chance (0.25 for 4 classes) after a few rounds.
        assert!(log.final_accuracy() > 0.3, "accuracy {}", log.final_accuracy());
        assert!(log.rounds.iter().all(|r| r.avg_device_accuracy.is_finite()));
    }

    #[test]
    fn probe_collects_when_enabled() {
        let mut sim = tiny_setup(
            FedZktConfig { probe_grad_norms: true, ..tiny_cfg() },
            tiny_sim(),
        );
        sim.run();
        let probe = sim.algorithm().probe();
        assert_eq!(probe.records().len(), 2);
        assert!(probe.records().iter().all(|r| r.kl >= 0.0 && r.sl >= 0.0));
    }

    #[test]
    fn all_three_losses_run() {
        for loss in [DistillLoss::Kl, DistillLoss::LogitL1, DistillLoss::Sl] {
            let mut sim =
                tiny_setup(FedZktConfig { loss, ..tiny_cfg() }, SimConfig { rounds: 1, ..tiny_sim() });
            let log = sim.run();
            assert!(log.final_accuracy().is_finite(), "{loss} produced NaN");
        }
    }

    #[test]
    fn zero_distill_iters_degenerates_to_local_training() {
        let mut sim = tiny_setup(
            FedZktConfig { distill_iters: 0, transfer_iters: 0, ..tiny_cfg() },
            SimConfig { rounds: 1, ..tiny_sim() },
        );
        let log = sim.run();
        assert_eq!(log.rounds.len(), 1);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut sim = tiny_setup(tiny_cfg(), SimConfig { rounds: 1, ..tiny_sim() });
            sim.run().final_accuracy()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn lazy_run_is_bit_identical_to_eager() {
        let run = |mode: Materialization| {
            let sim_cfg = SimConfig {
                rounds: 2,
                participation: 0.67,
                seed: 1,
                materialization: mode,
                ..Default::default()
            };
            let mut sim = tiny_setup(tiny_cfg(), sim_cfg);
            sim.run().to_json()
        };
        let mut eager = run(Materialization::Eager);
        let mut lazy = run(Materialization::Lazy);
        // The residency gauge is the one *intentionally* mode-dependent
        // column; every other logged bit must agree.
        for log in [&mut eager, &mut lazy] {
            *log = log
                .split("\"peak_resident_devices\":")
                .map(|part| match part.find('}') {
                    Some(i) => &part[i..],
                    None => part,
                })
                .collect();
        }
        assert_eq!(eager, lazy, "lazy FedZKT diverged from eager");
    }

    #[test]
    fn checkpoint_resume_matches_the_uninterrupted_run_bit_for_bit() {
        for mode in [Materialization::Eager, Materialization::Lazy] {
            let sim_cfg = SimConfig {
                participation: 0.67,
                materialization: mode,
                ..tiny_sim()
            };
            let reference = tiny_setup(tiny_cfg(), sim_cfg).run().clone();
            let mut first = tiny_setup(tiny_cfg(), sim_cfg);
            first.round(0);
            // Through the serialized form, as a real kill/restart would go.
            let ck = fedzkt_fl::SimCheckpoint::from_json(&first.checkpoint().to_json()).unwrap();
            drop(first);
            let mut resumed = tiny_setup(tiny_cfg(), sim_cfg);
            resumed.resume_from(&ck).expect("resume");
            let log = resumed.run().clone();
            assert_eq!(log.to_json(), reference.to_json(), "mode {mode:?}");
        }
    }

    #[test]
    fn lazy_fleet_releases_between_rounds() {
        let sim_cfg = SimConfig {
            rounds: 2,
            participation: 0.67,
            seed: 1,
            eval_every: 0,
            materialization: Materialization::Lazy,
            ..Default::default()
        };
        let mut sim = tiny_setup(tiny_cfg(), sim_cfg);
        sim.round(0);
        let reg = sim.algorithm().registry().expect("fedzkt exposes its registry");
        assert_eq!(reg.resident(), 0, "everything drops back to summaries at end of round");
        // The game's teacher ensemble touches the whole fleet.
        assert_eq!(reg.peak_resident(), 3);
    }
}
