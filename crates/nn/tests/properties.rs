//! Property-based tests on the layer/optimizer/state-dict layer.

use fedzkt_autograd::{loss::mse, Var};
use fedzkt_nn::{
    decode_state_dict, encode_state_dict, load_state_dict, param_count, state_dict, Activation,
    BatchNorm2d, Conv2d, Conv2dConfig, Linear, Module, MultiStepLr, Optimizer, Sequential, Sgd,
    SgdConfig, StateDict,
};
use fedzkt_tensor::{seeded_rng, Tensor};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Checkpoint encode/decode is lossless for arbitrary tensor layouts.
    #[test]
    fn checkpoint_roundtrip(seed in 0u64..500, n_params in 0usize..4, n_buffers in 0usize..3) {
        let mut rng = seeded_rng(seed);
        let mk = |rng: &mut fedzkt_tensor::Prng, i: usize| {
            let shapes: [&[usize]; 4] = [&[3], &[2, 2], &[1, 2, 3], &[2, 1, 2, 2]];
            Tensor::randn(shapes[i % 4], rng)
        };
        let sd = StateDict {
            params: (0..n_params).map(|i| mk(&mut rng, i)).collect(),
            buffers: (0..n_buffers).map(|i| mk(&mut rng, i + 1)).collect(),
        };
        let decoded = decode_state_dict(&encode_state_dict(&sd)).unwrap();
        prop_assert_eq!(sd, decoded);
    }

    /// load_state_dict(state_dict(m)) is the identity on model behaviour.
    #[test]
    fn state_dict_preserves_function(seed_a in 0u64..200, seed_b in 0u64..200) {
        let build = |seed: u64| {
            let mut rng = seeded_rng(seed);
            Sequential::new(vec![
                Box::new(Linear::new(4, 6, true, &mut rng)) as Box<dyn Module>,
                Box::new(Activation::Tanh),
                Box::new(Linear::new(6, 3, true, &mut rng)),
            ])
        };
        let a = build(seed_a);
        let b = build(seed_b);
        load_state_dict(&b, &state_dict(&a)).unwrap();
        let x = Var::constant(Tensor::randn(&[2, 4], &mut seeded_rng(9)));
        let ya = a.forward(&x).value_clone();
        let yb = b.forward(&x).value_clone();
        prop_assert_eq!(ya.data(), yb.data());
    }

    /// One SGD step moves parameters opposite to the gradient.
    #[test]
    fn sgd_step_descends(seed in 0u64..200, lr in 0.001f32..0.1) {
        let w = Var::parameter(Tensor::randn(&[4], &mut seeded_rng(seed)));
        let before = w.value_clone();
        let opt = Sgd::new(vec![w.clone()], SgdConfig { lr, ..Default::default() });
        opt.zero_grad();
        w.square().sum_all().backward();
        let grad = w.grad().unwrap();
        opt.step();
        let after = w.value_clone();
        for i in 0..4 {
            let expected = before.data()[i] - lr * grad.data()[i];
            prop_assert!((after.data()[i] - expected).abs() < 1e-5);
        }
    }

    /// MultiStepLr is non-increasing and respects the decay factor exactly.
    #[test]
    fn schedule_monotone(base in 0.001f32..1.0, total in 4usize..200) {
        let s = MultiStepLr::paper_schedule(base, total);
        let mut prev = f32::INFINITY;
        for it in 0..total {
            let lr = s.lr_at(it);
            prop_assert!(lr <= prev + 1e-9);
            prev = lr;
        }
        prop_assert!((s.lr_at(0) - base).abs() < 1e-7);
        prop_assert!((s.lr_at(total - 1) - base * 0.09).abs() < base * 0.01);
    }

    /// Conv2d output geometry matches the closed-form formula for any
    /// legal configuration.
    #[test]
    fn conv_layer_geometry(
        seed in 0u64..100, in_c in 1usize..4, out_c in 1usize..4,
        kernel in 1usize..4, stride in 1usize..3, pad in 0usize..2, img in 6usize..12,
    ) {
        prop_assume!(img + 2 * pad >= kernel);
        let mut rng = seeded_rng(seed);
        let conv = Conv2d::new(
            Conv2dConfig { in_channels: in_c, out_channels: out_c, kernel, stride, pad, groups: 1, bias: true },
            &mut rng,
        );
        let y = conv.forward(&Var::constant(Tensor::zeros(&[1, in_c, img, img])));
        let expect = (img + 2 * pad - kernel) / stride + 1;
        prop_assert_eq!(y.shape(), vec![1, out_c, expect, expect]);
    }

    /// Training a linear layer on a linear target strictly reduces the loss.
    #[test]
    fn training_reduces_loss(seed in 0u64..200) {
        let mut rng = seeded_rng(seed);
        let model = Linear::new(3, 1, true, &mut rng);
        let x = Var::constant(Tensor::randn(&[16, 3], &mut rng));
        let target = Var::constant(Tensor::randn(&[16, 1], &mut rng));
        let opt = Sgd::new(model.params(), SgdConfig { lr: 0.05, ..Default::default() });
        let initial = mse(&model.forward(&x), &target).value().item();
        for _ in 0..20 {
            opt.zero_grad();
            mse(&model.forward(&x), &target).backward();
            opt.step();
        }
        let trained = mse(&model.forward(&x), &target).value().item();
        prop_assert!(trained < initial + 1e-6, "loss {initial} -> {trained}");
    }

    /// BatchNorm in eval mode is a fixed affine map: two forward passes of
    /// the same input agree bit-for-bit, regardless of other inputs seen.
    #[test]
    fn batchnorm_eval_is_pure(seed in 0u64..200) {
        let bn = BatchNorm2d::new(3);
        let mut rng = seeded_rng(seed);
        // Train-mode pass to move the running stats somewhere non-trivial.
        let _ = bn.forward(&Var::constant(Tensor::randn(&[4, 3, 2, 2], &mut rng)));
        bn.set_training(false);
        let x = Tensor::randn(&[2, 3, 2, 2], &mut rng);
        let y1 = bn.forward(&Var::constant(x.clone())).value_clone();
        let _ = bn.forward(&Var::constant(Tensor::randn(&[5, 3, 2, 2], &mut rng)));
        let y2 = bn.forward(&Var::constant(x)).value_clone();
        prop_assert_eq!(y1.data(), y2.data());
    }

    /// param_count is additive under sequential composition.
    #[test]
    fn param_count_additive(a in 1usize..6, b in 1usize..6, c in 1usize..6) {
        let mut rng = seeded_rng(1);
        let l1 = Linear::new(a, b, true, &mut rng);
        let l2 = Linear::new(b, c, true, &mut rng);
        let expected = param_count(&l1) + param_count(&l2);
        let seq = Sequential::new(vec![
            Box::new(Linear::new(a, b, true, &mut rng)) as Box<dyn Module>,
            Box::new(Linear::new(b, c, true, &mut rng)),
        ]);
        prop_assert_eq!(param_count(&seq), expected);
        prop_assert_eq!(expected, a * b + b + b * c + c);
    }
}
