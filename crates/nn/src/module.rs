//! The [`Module`] trait, buffers, sequential composition and state dicts.

use crate::NnError;
use fedzkt_autograd::Var;
use fedzkt_tensor::Tensor;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::rc::Rc;

/// A non-trainable tensor slot owned by a layer (batch-norm running
/// statistics). Buffers are shared handles so a module can update them
/// during `forward(&self)`.
#[derive(Clone, Debug)]
pub struct Buffer {
    inner: Rc<RefCell<Tensor>>,
}

impl Buffer {
    /// Create a buffer holding `value`.
    pub fn new(value: Tensor) -> Self {
        Buffer { inner: Rc::new(RefCell::new(value)) }
    }

    /// Clone the current value out.
    pub fn get(&self) -> Tensor {
        self.inner.borrow().clone()
    }

    /// Number of f32 values held, without cloning.
    pub fn len(&self) -> usize {
        self.inner.borrow().len()
    }

    /// Shape of the held tensor, without cloning its data.
    pub fn shape(&self) -> Vec<usize> {
        self.inner.borrow().shape().to_vec()
    }

    /// Whether the buffer holds no values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Replace the value.
    ///
    /// # Panics
    /// Panics when the new value changes shape.
    pub fn set(&self, value: Tensor) {
        let mut slot = self.inner.borrow_mut();
        assert_eq!(slot.shape(), value.shape(), "buffer shape is fixed");
        *slot = value;
    }

    /// Exponential-moving-average update: `buf = (1 - m) * buf + m * new`.
    pub fn ema_update(&self, new: &Tensor, momentum: f32) {
        let mut slot = self.inner.borrow_mut();
        let updated = slot
            .mul_scalar(1.0 - momentum)
            .add(&new.mul_scalar(momentum))
            .expect("ema shapes");
        *slot = updated;
    }
}

/// A neural-network component: a differentiable function with trainable
/// parameters and optional non-trainable buffers.
///
/// All methods take `&self`; mutable layer state (training mode, running
/// statistics, dropout RNG) lives in interior-mutable cells so modules can
/// be freely shared inside a computation graph.
pub trait Module {
    /// Apply the module to an input node.
    fn forward(&self, x: &Var) -> Var;

    /// Trainable parameters in deterministic order.
    fn params(&self) -> Vec<Var>;

    /// Non-trainable state (running statistics), deterministic order.
    fn buffers(&self) -> Vec<Buffer> {
        Vec::new()
    }

    /// Switch between training and evaluation behaviour (batch-norm
    /// statistics, dropout). Default: stateless, nothing to do.
    fn set_training(&self, _training: bool) {}
}

/// A serializable snapshot of a module's parameters and buffers.
///
/// This is the unit of "communication" in the federated simulation: the
/// server ships a device's updated on-device model back as a `StateDict`
/// (Algorithm 1, line 12), and its encoded size is what the communication
/// accounting in `fedzkt-fl` measures.
///
/// It is also the unit of **thread transfer**: the autodiff tape is
/// `Rc`-based and cannot cross threads, so the device-parallel fleet driver
/// in `fedzkt-fl` moves models between workers as `StateDict`s (plain
/// tensors are `Send`) and rebuilds the module on the destination thread.
/// The snapshot-rebuild round trip is lossless
/// ([`state_dict`] → [`load_state_dict`] restores every parameter and
/// buffer bit-for-bit), which the checkpoint tests guard.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StateDict {
    /// Parameter tensors, in `Module::params` order.
    pub params: Vec<Tensor>,
    /// Buffer tensors, in `Module::buffers` order.
    pub buffers: Vec<Tensor>,
}

impl StateDict {
    /// All tensors in transfer order: parameters first, then buffers —
    /// the canonical iteration every wire codec encodes and decodes in.
    pub fn iter_tensors(&self) -> impl Iterator<Item = &Tensor> {
        self.params.iter().chain(self.buffers.iter())
    }

    /// Total number of f32 values (parameters + buffers).
    pub fn value_count(&self) -> usize {
        self.iter_tensors().map(Tensor::len).sum()
    }

    /// Bytes this state dict occupies as **raw uncompressed** f32s. This
    /// is a size, not a traffic count: what a round actually ships is the
    /// codec-encoded form, and all communication accounting reads the
    /// encoded wire size (`fedzkt_fl::codec`).
    pub fn byte_size(&self) -> usize {
        self.value_count() * std::mem::size_of::<f32>()
    }

    /// Do `self` and `other` describe the same architecture — equal
    /// parameter and buffer counts, with matching shapes position by
    /// position? This is the precondition for aggregating two snapshots
    /// (`fedzkt_fl`'s streaming average), for decoding a wire payload
    /// against a template, and for [`load_state_dict`] succeeding.
    pub fn same_layout(&self, other: &StateDict) -> bool {
        self.params.len() == other.params.len()
            && self.buffers.len() == other.buffers.len()
            && self.iter_tensors().zip(other.iter_tensors()).all(|(a, b)| a.shape() == b.shape())
    }
}

/// Snapshot a module's parameters and buffers.
pub fn state_dict(module: &dyn Module) -> StateDict {
    StateDict {
        params: module.params().iter().map(Var::value_clone).collect(),
        buffers: module.buffers().iter().map(Buffer::get).collect(),
    }
}

/// Load a snapshot produced by [`state_dict`] into a module with the same
/// architecture.
///
/// # Errors
/// Returns [`NnError::StateDictMismatch`] when counts or shapes disagree;
/// the module is left unmodified in that case.
pub fn load_state_dict(module: &dyn Module, sd: &StateDict) -> Result<(), NnError> {
    let params = module.params();
    let buffers = module.buffers();
    if params.len() != sd.params.len() || buffers.len() != sd.buffers.len() {
        return Err(NnError::StateDictMismatch {
            detail: format!(
                "module has {} params / {} buffers, dict has {} / {}",
                params.len(),
                buffers.len(),
                sd.params.len(),
                sd.buffers.len()
            ),
        });
    }
    for (i, (p, t)) in params.iter().zip(&sd.params).enumerate() {
        if p.shape() != t.shape() {
            return Err(NnError::StateDictMismatch {
                detail: format!("param {i}: module {:?} vs dict {:?}", p.shape(), t.shape()),
            });
        }
    }
    for (i, (b, t)) in buffers.iter().zip(&sd.buffers).enumerate() {
        if b.get().shape() != t.shape() {
            return Err(NnError::StateDictMismatch {
                detail: format!("buffer {i}: shape mismatch {:?}", t.shape()),
            });
        }
    }
    for (p, t) in params.iter().zip(&sd.params) {
        p.set_value(t.clone());
    }
    for (b, t) in buffers.iter().zip(&sd.buffers) {
        b.set(t.clone());
    }
    Ok(())
}

/// Number of trainable scalar parameters in a module.
pub fn param_count(module: &dyn Module) -> usize {
    module.params().iter().map(|p| p.value().len()).sum()
}

/// Bytes of trainable parameters (f32).
pub fn param_bytes(module: &dyn Module) -> usize {
    param_count(module) * std::mem::size_of::<f32>()
}

/// Bytes of the full transferable state (parameters **and** buffers) as
/// **raw uncompressed** f32s — exactly [`StateDict::byte_size`] of
/// [`state_dict`]`(module)`, but computed without materialising the
/// snapshot. Like `byte_size`, this is a size, not a traffic count:
/// per-round communication accounting goes through the wire codec
/// (`fedzkt_fl::codec`), which reports the *encoded* payload size.
pub fn state_bytes(module: &dyn Module) -> usize {
    let values = module.params().iter().map(|p| p.value().len()).sum::<usize>()
        + module.buffers().iter().map(Buffer::len).sum::<usize>();
    values * std::mem::size_of::<f32>()
}

/// A module that chains child modules in order.
pub struct Sequential {
    layers: Vec<Box<dyn Module>>,
}

impl Sequential {
    /// Build from an ordered list of layers.
    pub fn new(layers: Vec<Box<dyn Module>>) -> Self {
        Sequential { layers }
    }

    /// An empty chain (identity function).
    pub fn empty() -> Self {
        Sequential { layers: Vec::new() }
    }

    /// Append a layer, returning `self` for chaining.
    pub fn push(mut self, layer: Box<dyn Module>) -> Self {
        self.layers.push(layer);
        self
    }

    /// Number of child layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// True when the chain has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }
}

impl Module for Sequential {
    fn forward(&self, x: &Var) -> Var {
        let mut out = x.clone();
        for layer in &self.layers {
            out = layer.forward(&out);
        }
        out
    }

    fn params(&self) -> Vec<Var> {
        self.layers.iter().flat_map(|l| l.params()).collect()
    }

    fn buffers(&self) -> Vec<Buffer> {
        self.layers.iter().flat_map(|l| l.buffers()).collect()
    }

    fn set_training(&self, training: bool) {
        for layer in &self.layers {
            layer.set_training(training);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Activation, Linear};
    use fedzkt_tensor::seeded_rng;

    fn tiny_model(seed: u64) -> Sequential {
        let mut rng = seeded_rng(seed);
        Sequential::new(vec![
            Box::new(Linear::new(3, 4, true, &mut rng)),
            Box::new(Activation::Relu),
            Box::new(Linear::new(4, 2, true, &mut rng)),
        ])
    }

    #[test]
    fn sequential_composes() {
        let m = tiny_model(1);
        let x = Var::constant(Tensor::ones(&[2, 3]));
        let y = m.forward(&x);
        assert_eq!(y.shape(), vec![2, 2]);
        assert_eq!(m.params().len(), 4); // 2 weights + 2 biases
    }

    #[test]
    fn state_dict_roundtrip_changes_output() {
        let a = tiny_model(1);
        let b = tiny_model(2);
        let x = Var::constant(Tensor::ones(&[1, 3]));
        let ya0 = a.forward(&x).value_clone();
        let yb0 = b.forward(&x).value_clone();
        assert_ne!(ya0.data(), yb0.data());
        load_state_dict(&b, &state_dict(&a)).unwrap();
        let yb1 = b.forward(&x).value_clone();
        assert_eq!(ya0.data(), yb1.data());
    }

    #[test]
    fn load_rejects_wrong_architecture() {
        let mut rng = seeded_rng(3);
        let small = Linear::new(3, 2, true, &mut rng);
        let big = tiny_model(1);
        let err = load_state_dict(&small, &state_dict(&big)).unwrap_err();
        assert!(matches!(err, NnError::StateDictMismatch { .. }));
    }

    #[test]
    fn load_rejects_wrong_shape() {
        let mut rng = seeded_rng(4);
        let a = Linear::new(3, 2, true, &mut rng);
        let b = Linear::new(2, 3, true, &mut rng);
        assert!(load_state_dict(&a, &state_dict(&b)).is_err());
    }

    #[test]
    fn param_count_matches_architecture() {
        let m = tiny_model(5);
        // 3*4 + 4 + 4*2 + 2 = 26
        assert_eq!(param_count(&m), 26);
        assert_eq!(param_bytes(&m), 104);
    }

    #[test]
    fn state_dict_byte_size() {
        let m = tiny_model(6);
        assert_eq!(state_dict(&m).byte_size(), 104);
        // The snapshot-free count agrees with the snapshot's.
        assert_eq!(state_bytes(&m), state_dict(&m).byte_size());
    }

    #[test]
    fn same_layout_requires_matching_counts_and_shapes() {
        let a = state_dict(&tiny_model(1));
        let b = state_dict(&tiny_model(2));
        assert!(a.same_layout(&b), "same architecture, different weights");
        let mut rng = seeded_rng(7);
        let narrow = state_dict(&Linear::new(3, 2, true, &mut rng));
        assert!(!a.same_layout(&narrow), "different parameter count");
        let transposed = state_dict(&Linear::new(2, 3, true, &mut rng));
        assert!(!narrow.same_layout(&transposed), "same counts, different shapes");
    }

    #[test]
    fn buffer_ema_update() {
        let b = Buffer::new(Tensor::zeros(&[2]));
        b.ema_update(&Tensor::ones(&[2]), 0.1);
        let v = b.get();
        assert!((v.data()[0] - 0.1).abs() < 1e-6);
    }

    #[test]
    fn empty_sequential_is_identity() {
        let m = Sequential::empty();
        assert!(m.is_empty());
        let x = Var::constant(Tensor::ones(&[2, 2]));
        assert_eq!(m.forward(&x).value().data(), x.value().data());
    }
}
