//! Layer implementations.

use crate::module::{Buffer, Module};
use fedzkt_autograd::Var;
use fedzkt_tensor::{
    fan_in_out_conv2d, fan_in_out_linear, seeded_rng, Init, Prng, Tensor,
};
use rand::RngExt;
use std::cell::{Cell, RefCell};

/// Fully connected layer `y = x Wᵀ + b` with Glorot-initialised weights
/// (`W: [out, in]`).
///
/// Forward and backward both lower to the workspace's unified GEMM layer
/// (`fedzkt_tensor::ops::gemm`) via `Var::linear` — the forward is a single
/// NT product and the backward a NN (`dX = g W`) plus a TN (`dW = gᵀ X`)
/// product, so large batches engage the row-partitioned multi-threaded
/// kernels automatically.
pub struct Linear {
    weight: Var,
    bias: Option<Var>,
}

impl Linear {
    /// Create a dense layer with Glorot-uniform weights (the paper's
    /// initialisation) and zero bias.
    pub fn new(in_features: usize, out_features: usize, bias: bool, rng: &mut Prng) -> Self {
        let (fan_in, fan_out) = fan_in_out_linear(out_features, in_features);
        let weight = Var::parameter(Init::GlorotUniform.build(
            &[out_features, in_features],
            fan_in,
            fan_out,
            rng,
        ));
        let bias = bias.then(|| Var::parameter(Tensor::zeros(&[out_features])));
        Linear { weight, bias }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.weight.shape()[1]
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.weight.shape()[0]
    }

    /// The weight parameter, `[out_features, in_features]`.
    pub fn weight(&self) -> &Var {
        &self.weight
    }

    /// The bias parameter `[out_features]`, if the layer has one.
    pub fn bias_param(&self) -> Option<&Var> {
        self.bias.as_ref()
    }
}

impl Module for Linear {
    fn forward(&self, x: &Var) -> Var {
        // Zoo-width layers take the statically-shaped fast path (same
        // kernels, bit-identical — see `crate::typed`); anything else, or
        // a disabled toggle, falls through to the dynamic entry.
        if let Some(y) = crate::typed::dispatch_linear(x, &self.weight, self.bias.as_ref()) {
            return y;
        }
        x.linear(&self.weight, self.bias.as_ref())
    }

    fn params(&self) -> Vec<Var> {
        let mut p = vec![self.weight.clone()];
        p.extend(self.bias.clone());
        p
    }
}

/// Configuration for [`Conv2d`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dConfig {
    /// Input channels.
    pub in_channels: usize,
    /// Output channels.
    pub out_channels: usize,
    /// Square kernel size.
    pub kernel: usize,
    /// Stride for both spatial dims.
    pub stride: usize,
    /// Zero padding for both spatial dims.
    pub pad: usize,
    /// Channel groups (`in_channels` for depthwise).
    pub groups: usize,
    /// Whether to add a per-channel bias.
    pub bias: bool,
}

impl Default for Conv2dConfig {
    fn default() -> Self {
        Conv2dConfig {
            in_channels: 1,
            out_channels: 1,
            kernel: 3,
            stride: 1,
            pad: 1,
            groups: 1,
            bias: true,
        }
    }
}

/// 2-D convolution layer over NCHW batches.
pub struct Conv2d {
    weight: Var,
    bias: Option<Var>,
    stride: usize,
    pad: usize,
    groups: usize,
}

impl Conv2d {
    /// Create a convolution layer with Glorot-uniform kernels.
    ///
    /// # Panics
    /// Panics when `groups` does not divide both channel counts.
    pub fn new(cfg: Conv2dConfig, rng: &mut Prng) -> Self {
        assert!(
            cfg.groups > 0
                && cfg.in_channels.is_multiple_of(cfg.groups)
                && cfg.out_channels.is_multiple_of(cfg.groups),
            "groups {} must divide in {} and out {}",
            cfg.groups,
            cfg.in_channels,
            cfg.out_channels
        );
        let cpg = cfg.in_channels / cfg.groups;
        let (fan_in, fan_out) = fan_in_out_conv2d(cfg.out_channels, cpg, cfg.kernel, cfg.kernel);
        let weight = Var::parameter(Init::GlorotUniform.build(
            &[cfg.out_channels, cpg, cfg.kernel, cfg.kernel],
            fan_in,
            fan_out,
            rng,
        ));
        let bias = cfg.bias.then(|| Var::parameter(Tensor::zeros(&[cfg.out_channels])));
        Conv2d { weight, bias, stride: cfg.stride, pad: cfg.pad, groups: cfg.groups }
    }
}

impl Module for Conv2d {
    fn forward(&self, x: &Var) -> Var {
        let y = x.conv2d(&self.weight, self.stride, self.pad, self.groups);
        match &self.bias {
            Some(b) => y.add_channel_bias(b),
            None => y,
        }
    }

    fn params(&self) -> Vec<Var> {
        let mut p = vec![self.weight.clone()];
        p.extend(self.bias.clone());
        p
    }
}

/// Batch normalisation over NCHW batches with running statistics.
pub struct BatchNorm2d {
    gamma: Var,
    beta: Var,
    running_mean: Buffer,
    running_var: Buffer,
    momentum: f32,
    eps: f32,
    training: Cell<bool>,
}

impl BatchNorm2d {
    /// Create a batch-norm layer for `channels` channels with PyTorch
    /// defaults (`momentum = 0.1`, `eps = 1e-5`).
    pub fn new(channels: usize) -> Self {
        BatchNorm2d {
            gamma: Var::parameter(Tensor::ones(&[channels])),
            beta: Var::parameter(Tensor::zeros(&[channels])),
            running_mean: Buffer::new(Tensor::zeros(&[channels])),
            running_var: Buffer::new(Tensor::ones(&[channels])),
            momentum: 0.1,
            eps: 1e-5,
            training: Cell::new(true),
        }
    }
}

impl Module for BatchNorm2d {
    fn forward(&self, x: &Var) -> Var {
        if self.training.get() {
            let (y, batch_mean, batch_var) =
                x.batch_norm2d_train(&self.gamma, &self.beta, self.eps);
            self.running_mean.ema_update(&batch_mean, self.momentum);
            self.running_var.ema_update(&batch_var, self.momentum);
            y
        } else {
            x.batch_norm2d_eval(
                &self.gamma,
                &self.beta,
                &self.running_mean.get(),
                &self.running_var.get(),
                self.eps,
            )
        }
    }

    fn params(&self) -> Vec<Var> {
        vec![self.gamma.clone(), self.beta.clone()]
    }

    fn buffers(&self) -> Vec<Buffer> {
        vec![self.running_mean.clone(), self.running_var.clone()]
    }

    fn set_training(&self, training: bool) {
        self.training.set(training);
    }
}

/// A stateless activation layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Activation {
    /// `max(x, 0)`.
    Relu,
    /// `min(max(x, 0), 6)` (MobileNetV2).
    Relu6,
    /// Leaky ReLU with the given negative slope.
    LeakyRelu(f32),
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
}

impl Module for Activation {
    fn forward(&self, x: &Var) -> Var {
        match self {
            Activation::Relu => x.relu(),
            Activation::Relu6 => x.relu6(),
            Activation::LeakyRelu(s) => x.leaky_relu(*s),
            Activation::Tanh => x.tanh(),
            Activation::Sigmoid => x.sigmoid(),
        }
    }

    fn params(&self) -> Vec<Var> {
        Vec::new()
    }
}

/// Flatten `[N, ...]` to `[N, rest]` (transition from conv to dense head).
#[derive(Debug, Clone, Copy, Default)]
pub struct Flatten;

impl Module for Flatten {
    fn forward(&self, x: &Var) -> Var {
        x.flatten_batch()
    }

    fn params(&self) -> Vec<Var> {
        Vec::new()
    }
}

/// Average pooling layer with a square window.
#[derive(Debug, Clone, Copy)]
pub struct AvgPool2d {
    /// Window size.
    pub kernel: usize,
    /// Stride.
    pub stride: usize,
}

impl Module for AvgPool2d {
    fn forward(&self, x: &Var) -> Var {
        x.avg_pool2d(self.kernel, self.stride)
    }

    fn params(&self) -> Vec<Var> {
        Vec::new()
    }
}

/// Max pooling layer with a square window.
#[derive(Debug, Clone, Copy)]
pub struct MaxPool2d {
    /// Window size.
    pub kernel: usize,
    /// Stride.
    pub stride: usize,
}

impl Module for MaxPool2d {
    fn forward(&self, x: &Var) -> Var {
        x.max_pool2d(self.kernel, self.stride)
    }

    fn params(&self) -> Vec<Var> {
        Vec::new()
    }
}

/// Global average pooling `[N, C, H, W] -> [N, C]`.
#[derive(Debug, Clone, Copy, Default)]
pub struct GlobalAvgPool;

impl Module for GlobalAvgPool {
    fn forward(&self, x: &Var) -> Var {
        x.global_avg_pool()
    }

    fn params(&self) -> Vec<Var> {
        Vec::new()
    }
}

/// Nearest-neighbour upsampling by an integer factor (generator blocks).
#[derive(Debug, Clone, Copy)]
pub struct UpsampleNearest2d {
    /// Integer scale factor.
    pub factor: usize,
}

impl Module for UpsampleNearest2d {
    fn forward(&self, x: &Var) -> Var {
        x.upsample_nearest2d(self.factor)
    }

    fn params(&self) -> Vec<Var> {
        Vec::new()
    }
}

/// Inverted dropout layer with an owned RNG stream (active only in
/// training mode).
pub struct Dropout {
    p: f32,
    rng: RefCell<Prng>,
    training: Cell<bool>,
}

impl Dropout {
    /// Create a dropout layer with drop probability `p` and a dedicated
    /// RNG stream derived from `seed`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p < 1.0`.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&p), "dropout probability must be in [0, 1)");
        Dropout { p, rng: RefCell::new(seeded_rng(seed)), training: Cell::new(true) }
    }
}

impl Module for Dropout {
    fn forward(&self, x: &Var) -> Var {
        if self.training.get() && self.p > 0.0 {
            x.dropout(self.p, &mut self.rng.borrow_mut())
        } else {
            x.clone()
        }
    }

    fn params(&self) -> Vec<Var> {
        Vec::new()
    }

    fn set_training(&self, training: bool) {
        self.training.set(training);
    }
}

// Touch `RngExt` so the import is used on all paths (dropout uses it via
// the autograd op).
#[allow(dead_code)]
fn _rng_ext_used(rng: &mut Prng) -> f32 {
    rng.random()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::{load_state_dict, state_dict};

    #[test]
    fn linear_shapes() {
        let mut rng = seeded_rng(1);
        let l = Linear::new(5, 3, true, &mut rng);
        assert_eq!((l.in_features(), l.out_features()), (5, 3));
        let y = l.forward(&Var::constant(Tensor::zeros(&[4, 5])));
        assert_eq!(y.shape(), vec![4, 3]);
    }

    #[test]
    fn conv_layer_shapes() {
        let mut rng = seeded_rng(2);
        let c = Conv2d::new(
            Conv2dConfig { in_channels: 3, out_channels: 8, kernel: 3, stride: 2, pad: 1, groups: 1, bias: true },
            &mut rng,
        );
        let y = c.forward(&Var::constant(Tensor::zeros(&[2, 3, 8, 8])));
        assert_eq!(y.shape(), vec![2, 8, 4, 4]);
    }

    #[test]
    fn depthwise_conv_layer() {
        let mut rng = seeded_rng(3);
        let c = Conv2d::new(
            Conv2dConfig { in_channels: 4, out_channels: 4, kernel: 3, stride: 1, pad: 1, groups: 4, bias: false },
            &mut rng,
        );
        assert_eq!(c.params().len(), 1);
        assert_eq!(c.params()[0].shape(), vec![4, 1, 3, 3]);
        let y = c.forward(&Var::constant(Tensor::zeros(&[1, 4, 5, 5])));
        assert_eq!(y.shape(), vec![1, 4, 5, 5]);
    }

    #[test]
    fn batchnorm_train_updates_running_stats() {
        let bn = BatchNorm2d::new(2);
        let x = Var::constant(Tensor::full(&[4, 2, 3, 3], 5.0));
        let before = bn.buffers()[0].get();
        assert_eq!(before.data(), &[0.0, 0.0]);
        let _ = bn.forward(&x);
        let after = bn.buffers()[0].get();
        // EMA moved 10% toward the batch mean of 5.
        assert!((after.data()[0] - 0.5).abs() < 1e-5);
    }

    #[test]
    fn batchnorm_eval_does_not_update_stats() {
        let bn = BatchNorm2d::new(2);
        bn.set_training(false);
        let x = Var::constant(Tensor::full(&[4, 2, 3, 3], 5.0));
        let _ = bn.forward(&x);
        assert_eq!(bn.buffers()[0].get().data(), &[0.0, 0.0]);
    }

    #[test]
    fn batchnorm_statedict_includes_buffers() {
        let a = BatchNorm2d::new(3);
        let _ = a.forward(&Var::constant(Tensor::randn(&[4, 3, 2, 2], &mut seeded_rng(9))));
        let b = BatchNorm2d::new(3);
        load_state_dict(&b, &state_dict(&a)).unwrap();
        assert_eq!(a.buffers()[0].get(), b.buffers()[0].get());
        assert_eq!(a.buffers()[1].get(), b.buffers()[1].get());
    }

    #[test]
    fn dropout_eval_is_identity() {
        let d = Dropout::new(0.5, 1);
        d.set_training(false);
        let x = Var::constant(Tensor::ones(&[8]));
        assert_eq!(d.forward(&x).value().data(), &[1.0; 8]);
    }

    #[test]
    fn dropout_train_masks() {
        let d = Dropout::new(0.5, 2);
        let x = Var::constant(Tensor::ones(&[256]));
        let y = d.forward(&x);
        let zeros = y.value().data().iter().filter(|&&v| v == 0.0).count();
        assert!(zeros > 64 && zeros < 192, "{zeros} zeros");
    }

    #[test]
    fn pooling_layers_shapes() {
        let x = Var::constant(Tensor::zeros(&[1, 2, 8, 8]));
        assert_eq!(AvgPool2d { kernel: 2, stride: 2 }.forward(&x).shape(), vec![1, 2, 4, 4]);
        assert_eq!(MaxPool2d { kernel: 2, stride: 2 }.forward(&x).shape(), vec![1, 2, 4, 4]);
        assert_eq!(GlobalAvgPool.forward(&x).shape(), vec![1, 2]);
        assert_eq!(UpsampleNearest2d { factor: 2 }.forward(&x).shape(), vec![1, 2, 16, 16]);
        assert_eq!(Flatten.forward(&x).shape(), vec![1, 128]);
    }
}
