//! Optimizers and learning-rate schedules.
//!
//! The FedZKT paper (§IV-A3) trains on-device and global models with SGD
//! (lr 0.01) and the generator with Adam (lr 1e-3), decaying both server
//! learning rates by ×0.3 at 1/2 and 3/4 of the distillation iterations —
//! [`MultiStepLr::paper_schedule`] reproduces exactly that.

use fedzkt_autograd::Var;
use fedzkt_tensor::Tensor;
use std::cell::{Cell, RefCell};
use std::collections::HashMap;

/// Common optimizer interface over a fixed parameter list.
pub trait Optimizer {
    /// Apply one update using the gradients currently stored on the
    /// parameters; parameters without a gradient are skipped.
    fn step(&self);

    /// Clear the gradients of all managed parameters.
    fn zero_grad(&self);

    /// Current learning rate.
    fn lr(&self) -> f32;

    /// Replace the learning rate (used by schedulers).
    fn set_lr(&self, lr: f32);
}

/// Configuration for [`Sgd`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SgdConfig {
    /// Learning rate.
    pub lr: f32,
    /// Classical momentum coefficient (0 disables).
    pub momentum: f32,
    /// ℓ2 weight decay added to gradients (0 disables).
    pub weight_decay: f32,
}

impl Default for SgdConfig {
    fn default() -> Self {
        SgdConfig { lr: 0.01, momentum: 0.0, weight_decay: 0.0 }
    }
}

/// Stochastic gradient descent with optional momentum and weight decay.
pub struct Sgd {
    params: Vec<Var>,
    lr: Cell<f32>,
    momentum: f32,
    weight_decay: f32,
    velocity: RefCell<HashMap<u64, Tensor>>,
}

impl Sgd {
    /// Create an SGD optimizer over `params`.
    pub fn new(params: Vec<Var>, cfg: SgdConfig) -> Self {
        Sgd {
            params,
            lr: Cell::new(cfg.lr),
            momentum: cfg.momentum,
            weight_decay: cfg.weight_decay,
            velocity: RefCell::new(HashMap::new()),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&self) {
        let lr = self.lr.get();
        let mut velocity = self.velocity.borrow_mut();
        for p in &self.params {
            let Some(mut g) = p.grad() else { continue };
            if self.weight_decay != 0.0 {
                g.add_scaled_inplace(&p.value(), self.weight_decay).expect("weight decay");
            }
            let update = if self.momentum != 0.0 {
                let v = velocity
                    .entry(p.id())
                    .or_insert_with(|| Tensor::zeros(&p.shape()));
                // v = momentum * v + g
                let mut new_v = v.mul_scalar(self.momentum);
                new_v.add_scaled_inplace(&g, 1.0).expect("momentum");
                *v = new_v.clone();
                new_v
            } else {
                g
            };
            let mut w = p.value_clone();
            w.add_scaled_inplace(&update, -lr).expect("sgd step");
            p.set_value(w);
        }
    }

    fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }

    fn lr(&self) -> f32 {
        self.lr.get()
    }

    fn set_lr(&self, lr: f32) {
        self.lr.set(lr);
    }
}

/// Configuration for [`Adam`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdamConfig {
    /// Learning rate (paper: 1e-3 for the generator).
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Denominator fuzz.
    pub eps: f32,
}

impl Default for AdamConfig {
    fn default() -> Self {
        AdamConfig { lr: 1e-3, beta1: 0.9, beta2: 0.999, eps: 1e-8 }
    }
}

/// Adam optimizer (Kingma & Ba) with bias correction.
pub struct Adam {
    params: Vec<Var>,
    lr: Cell<f32>,
    cfg: AdamConfig,
    state: RefCell<HashMap<u64, (Tensor, Tensor)>>,
    t: Cell<u64>,
}

impl Adam {
    /// Create an Adam optimizer over `params`.
    pub fn new(params: Vec<Var>, cfg: AdamConfig) -> Self {
        Adam {
            params,
            lr: Cell::new(cfg.lr),
            cfg,
            state: RefCell::new(HashMap::new()),
            t: Cell::new(0),
        }
    }

    /// Export the optimizer state for checkpointing: the step counter and,
    /// **in parameter order**, each parameter's `(m, v)` moments (`None`
    /// while the parameter has never received a gradient).
    ///
    /// Moments are keyed internally by [`Var::id`], which is a
    /// process-local counter — it does not survive a restart — so the
    /// portable representation is positional.
    pub fn export_state(&self) -> (u64, Vec<Option<(Tensor, Tensor)>>) {
        let state = self.state.borrow();
        let moments = self.params.iter().map(|p| state.get(&p.id()).cloned()).collect();
        (self.t.get(), moments)
    }

    /// Restore state captured by [`Adam::export_state`] into this
    /// optimizer (whose parameter list must have the same length and
    /// per-parameter shapes as the exporting one).
    ///
    /// # Errors
    /// Returns a message when the moment list length or any moment shape
    /// disagrees with the managed parameters.
    pub fn import_state(
        &self,
        t: u64,
        moments: Vec<Option<(Tensor, Tensor)>>,
    ) -> Result<(), String> {
        if moments.len() != self.params.len() {
            return Err(format!(
                "adam state covers {} params, optimizer manages {}",
                moments.len(),
                self.params.len()
            ));
        }
        let mut state = self.state.borrow_mut();
        state.clear();
        for (p, entry) in self.params.iter().zip(moments) {
            let Some((m, v)) = entry else { continue };
            if m.shape() != p.shape() || v.shape() != p.shape() {
                return Err(format!(
                    "adam moment shape {:?}/{:?} does not match param shape {:?}",
                    m.shape(),
                    v.shape(),
                    p.shape()
                ));
            }
            state.insert(p.id(), (m, v));
        }
        self.t.set(t);
        Ok(())
    }
}

impl Optimizer for Adam {
    fn step(&self) {
        let t = self.t.get() + 1;
        self.t.set(t);
        let lr = self.lr.get();
        let (b1, b2, eps) = (self.cfg.beta1, self.cfg.beta2, self.cfg.eps);
        let bc1 = 1.0 - b1.powi(t as i32);
        let bc2 = 1.0 - b2.powi(t as i32);
        let mut state = self.state.borrow_mut();
        for p in &self.params {
            let Some(g) = p.grad() else { continue };
            let (m, v) = state
                .entry(p.id())
                .or_insert_with(|| (Tensor::zeros(&p.shape()), Tensor::zeros(&p.shape())));
            let new_m = m
                .mul_scalar(b1)
                .add(&g.mul_scalar(1.0 - b1))
                .expect("adam m");
            let new_v = v
                .mul_scalar(b2)
                .add(&g.map(|x| x * x).mul_scalar(1.0 - b2))
                .expect("adam v");
            *m = new_m.clone();
            *v = new_v.clone();
            let mut w = p.value_clone();
            let mhat = new_m.mul_scalar(1.0 / bc1);
            let vhat = new_v.mul_scalar(1.0 / bc2);
            let update = mhat
                .zip_map(&vhat, |mi, vi| mi / (vi.sqrt() + eps))
                .expect("adam update");
            w.add_scaled_inplace(&update, -lr).expect("adam step");
            p.set_value(w);
        }
    }

    fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }

    fn lr(&self) -> f32 {
        self.lr.get()
    }

    fn set_lr(&self, lr: f32) {
        self.lr.set(lr);
    }
}

/// Multi-step learning-rate decay: multiply the base rate by `gamma` at
/// each milestone iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiStepLr {
    base_lr: f32,
    milestones: Vec<usize>,
    gamma: f32,
}

impl MultiStepLr {
    /// Create a schedule from explicit milestones.
    pub fn new(base_lr: f32, milestones: Vec<usize>, gamma: f32) -> Self {
        MultiStepLr { base_lr, milestones, gamma }
    }

    /// The schedule used in the paper's server update: decay ×0.3 at 1/2
    /// and 3/4 of the total iterations.
    pub fn paper_schedule(base_lr: f32, total_iters: usize) -> Self {
        MultiStepLr::new(base_lr, vec![total_iters / 2, total_iters * 3 / 4], 0.3)
    }

    /// Learning rate at iteration `iter` (0-based).
    pub fn lr_at(&self, iter: usize) -> f32 {
        let passed = self.milestones.iter().filter(|&&m| iter >= m).count();
        self.base_lr * self.gamma.powi(passed as i32)
    }

    /// Update an optimizer's learning rate for iteration `iter`.
    pub fn apply(&self, opt: &dyn Optimizer, iter: usize) {
        opt.set_lr(self.lr_at(iter));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedzkt_autograd::loss::mse;
    use fedzkt_tensor::seeded_rng;

    #[test]
    fn sgd_descends_quadratic() {
        let w = Var::parameter(Tensor::from_vec(vec![5.0], &[1]).unwrap());
        let opt = Sgd::new(vec![w.clone()], SgdConfig { lr: 0.1, ..Default::default() });
        for _ in 0..100 {
            opt.zero_grad();
            w.square().sum_all().backward();
            opt.step();
        }
        assert!(w.value().item().abs() < 1e-3);
    }

    #[test]
    fn sgd_momentum_accelerates() {
        let run = |momentum: f32| {
            let w = Var::parameter(Tensor::from_vec(vec![5.0], &[1]).unwrap());
            let opt = Sgd::new(
                vec![w.clone()],
                SgdConfig { lr: 0.02, momentum, ..Default::default() },
            );
            for _ in 0..20 {
                opt.zero_grad();
                w.square().sum_all().backward();
                opt.step();
            }
            let endpoint = w.value().item().abs();
            endpoint
        };
        assert!(run(0.9) < run(0.0));
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let w = Var::parameter(Tensor::from_vec(vec![1.0], &[1]).unwrap());
        let opt = Sgd::new(
            vec![w.clone()],
            SgdConfig { lr: 0.1, weight_decay: 0.5, ..Default::default() },
        );
        // Zero loss gradient: decay alone should shrink the weight.
        opt.zero_grad();
        w.scale(0.0).sum_all().backward();
        opt.step();
        assert!(w.value().item() < 1.0);
    }

    #[test]
    fn adam_fits_linear_regression() {
        let mut rng = seeded_rng(7);
        let x = Tensor::randn(&[32, 3], &mut rng);
        let w_true = Tensor::from_vec(vec![1.0, -2.0, 0.5], &[1, 3]).unwrap();
        let y_true = x.matmul_nt(&w_true).unwrap();
        let w = Var::parameter(Tensor::zeros(&[1, 3]));
        let opt = Adam::new(vec![w.clone()], AdamConfig { lr: 0.05, ..Default::default() });
        for _ in 0..300 {
            opt.zero_grad();
            let pred = Var::constant(x.clone()).matmul(&w.reshape(&[3, 1]));
            mse(&pred, &Var::constant(y_true.clone())).backward();
            opt.step();
        }
        let learned = w.value_clone();
        for (a, b) in learned.data().iter().zip(w_true.data()) {
            assert!((a - b).abs() < 0.05, "{a} vs {b}");
        }
    }

    #[test]
    fn adam_state_round_trip_resumes_identically() {
        let fit = |w: &Var, opt: &Adam, iters: usize| {
            for _ in 0..iters {
                opt.zero_grad();
                w.square().sum_all().backward();
                opt.step();
            }
        };
        // Uninterrupted reference: 10 steps.
        let w_ref = Var::parameter(Tensor::from_vec(vec![5.0], &[1]).unwrap());
        let opt_ref = Adam::new(vec![w_ref.clone()], AdamConfig::default());
        fit(&w_ref, &opt_ref, 10);
        // Checkpointed run: 4 steps, export, import into a fresh
        // optimizer (new Var => new id), 6 more steps.
        let w = Var::parameter(Tensor::from_vec(vec![5.0], &[1]).unwrap());
        let opt = Adam::new(vec![w.clone()], AdamConfig::default());
        fit(&w, &opt, 4);
        let (t, moments) = opt.export_state();
        let w2 = Var::parameter(w.value_clone());
        let opt2 = Adam::new(vec![w2.clone()], AdamConfig::default());
        opt2.import_state(t, moments).unwrap();
        fit(&w2, &opt2, 6);
        assert_eq!(w2.value().item().to_bits(), w_ref.value().item().to_bits());
    }

    #[test]
    fn adam_import_rejects_mismatched_state() {
        let w = Var::parameter(Tensor::from_vec(vec![1.0], &[1]).unwrap());
        let opt = Adam::new(vec![w.clone()], AdamConfig::default());
        assert!(opt.import_state(1, vec![]).is_err());
        let bad = Tensor::zeros(&[2]);
        assert!(opt.import_state(1, vec![Some((bad.clone(), bad))]).is_err());
    }

    #[test]
    fn step_skips_params_without_grad() {
        let w = Var::parameter(Tensor::from_vec(vec![1.0], &[1]).unwrap());
        let opt = Sgd::new(vec![w.clone()], SgdConfig::default());
        opt.step(); // no backward ran
        assert_eq!(w.value().item(), 1.0);
    }

    #[test]
    fn multistep_schedule_matches_paper() {
        let s = MultiStepLr::paper_schedule(0.01, 200);
        assert!((s.lr_at(0) - 0.01).abs() < 1e-8);
        assert!((s.lr_at(99) - 0.01).abs() < 1e-8);
        assert!((s.lr_at(100) - 0.003).abs() < 1e-6);
        assert!((s.lr_at(150) - 0.0009).abs() < 1e-7);
        assert!((s.lr_at(199) - 0.0009).abs() < 1e-7);
    }

    #[test]
    fn scheduler_applies_to_optimizer() {
        let opt = Sgd::new(vec![], SgdConfig { lr: 1.0, ..Default::default() });
        let s = MultiStepLr::new(1.0, vec![10], 0.1);
        s.apply(&opt, 5);
        assert!((opt.lr() - 1.0).abs() < 1e-8);
        s.apply(&opt, 10);
        assert!((opt.lr() - 0.1).abs() < 1e-8);
    }
}
