//! Compact binary checkpoints for [`StateDict`]s.
//!
//! The federated simulation "transmits" models as state dicts; this module
//! gives them a wire format so runs can be checkpointed to disk and so the
//! communication accounting in `fedzkt-fl` corresponds to real bytes. The
//! format is deliberately simple and versioned:
//!
//! ```text
//! magic  "FZKT"          4 bytes
//! version u32 LE          4 bytes
//! n_params u32 LE
//! n_buffers u32 LE
//! per tensor: rank u32, dims [u32], data [f32 LE]
//! ```

use crate::{NnError, StateDict};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use fedzkt_tensor::Tensor;

const MAGIC: &[u8; 4] = b"FZKT";
const VERSION: u32 = 1;

/// Serialize a state dict into the versioned binary format.
pub fn encode_state_dict(sd: &StateDict) -> Bytes {
    let mut buf = BytesMut::with_capacity(16 + sd.byte_size() + 16 * (sd.params.len() + 1));
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u32_le(sd.params.len() as u32);
    buf.put_u32_le(sd.buffers.len() as u32);
    for t in sd.params.iter().chain(&sd.buffers) {
        buf.put_u32_le(t.shape().len() as u32);
        for &d in t.shape() {
            buf.put_u32_le(d as u32);
        }
        for &v in t.data() {
            buf.put_f32_le(v);
        }
    }
    buf.freeze()
}

/// Deserialize a state dict produced by [`encode_state_dict`].
///
/// # Errors
/// Returns [`NnError::StateDictMismatch`] on bad magic, unsupported version
/// or a truncated buffer — the decoder never panics on malformed input.
pub fn decode_state_dict(mut data: &[u8]) -> Result<StateDict, NnError> {
    let fail = |detail: &str| NnError::StateDictMismatch { detail: detail.to_string() };
    if data.remaining() < 16 {
        return Err(fail("buffer shorter than header"));
    }
    let mut magic = [0u8; 4];
    data.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(fail("bad magic"));
    }
    let version = data.get_u32_le();
    if version != VERSION {
        return Err(fail(&format!("unsupported version {version}")));
    }
    let n_params = data.get_u32_le() as usize;
    let n_buffers = data.get_u32_le() as usize;
    if n_params + n_buffers > 1_000_000 {
        return Err(fail("implausible tensor count"));
    }
    let mut tensors = Vec::with_capacity(n_params + n_buffers);
    for _ in 0..n_params + n_buffers {
        if data.remaining() < 4 {
            return Err(fail("truncated tensor header"));
        }
        let rank = data.get_u32_le() as usize;
        if rank > 8 || data.remaining() < 4 * rank {
            return Err(fail("implausible tensor rank"));
        }
        let mut shape = Vec::with_capacity(rank);
        for _ in 0..rank {
            shape.push(data.get_u32_le() as usize);
        }
        let len: usize = shape.iter().product();
        if data.remaining() < 4 * len {
            return Err(fail("truncated tensor data"));
        }
        let mut values = Vec::with_capacity(len);
        for _ in 0..len {
            values.push(data.get_f32_le());
        }
        tensors.push(
            Tensor::from_vec(values, &shape)
                .map_err(|e| fail(&format!("tensor rebuild: {e}")))?,
        );
    }
    let buffers = tensors.split_off(n_params);
    Ok(StateDict { params: tensors, buffers })
}

/// Write a state dict to a file.
///
/// # Errors
/// Returns any I/O error from the filesystem.
pub fn save_state_dict(sd: &StateDict, path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, encode_state_dict(sd))
}

/// Read a state dict from a file written by [`save_state_dict`].
///
/// # Errors
/// Returns I/O errors, or [`NnError`] mapped into
/// [`std::io::ErrorKind::InvalidData`] for malformed contents.
pub fn load_state_dict_file(path: &std::path::Path) -> std::io::Result<StateDict> {
    let data = std::fs::read(path)?;
    decode_state_dict(&data)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedzkt_tensor::seeded_rng;

    fn sample_sd() -> StateDict {
        let mut rng = seeded_rng(1);
        StateDict {
            params: vec![
                Tensor::randn(&[3, 4], &mut rng),
                Tensor::randn(&[7], &mut rng),
                Tensor::scalar(2.5),
            ],
            buffers: vec![Tensor::randn(&[2, 2, 2, 2], &mut rng)],
        }
    }

    #[test]
    fn roundtrip_is_lossless() {
        let sd = sample_sd();
        let decoded = decode_state_dict(&encode_state_dict(&sd)).unwrap();
        assert_eq!(sd, decoded);
    }

    #[test]
    fn encoded_size_close_to_raw_bytes() {
        let sd = sample_sd();
        let encoded = encode_state_dict(&sd);
        assert!(encoded.len() >= sd.byte_size());
        assert!(encoded.len() < sd.byte_size() + 128, "excessive overhead");
    }

    #[test]
    fn rejects_bad_magic() {
        let mut data = encode_state_dict(&sample_sd()).to_vec();
        data[0] = b'X';
        assert!(decode_state_dict(&data).is_err());
    }

    #[test]
    fn rejects_bad_version() {
        let mut data = encode_state_dict(&sample_sd()).to_vec();
        data[4] = 99;
        assert!(decode_state_dict(&data).is_err());
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let data = encode_state_dict(&sample_sd()).to_vec();
        // Any prefix must fail cleanly, never panic.
        for cut in 0..data.len() {
            assert!(decode_state_dict(&data[..cut]).is_err(), "prefix {cut} decoded");
        }
    }

    #[test]
    fn empty_state_dict_roundtrips() {
        let sd = StateDict { params: vec![], buffers: vec![] };
        assert_eq!(decode_state_dict(&encode_state_dict(&sd)).unwrap(), sd);
    }

    #[test]
    fn file_roundtrip() {
        let sd = sample_sd();
        let dir = std::env::temp_dir().join("fedzkt_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.fzkt");
        save_state_dict(&sd, &path).unwrap();
        let loaded = load_state_dict_file(&path).unwrap();
        assert_eq!(sd, loaded);
        std::fs::remove_file(&path).ok();
    }
}
