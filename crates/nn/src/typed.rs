//! Statically-shaped layer fronts over the dynamic layer set.
//!
//! Two things live here, both built on `fedzkt_tensor::typed`:
//!
//! * [`TypedLinear`] and the width-tagged activation token [`Feat`] — a
//!   dense layer whose feature widths are const generics, so **chaining
//!   two layers whose widths disagree is a compile error** (the model
//!   builders in `fedzkt-models` wire their dense stacks through these),
//!   and whose three GEMMs enter the kernel dispatch below the runtime
//!   shape guards.
//! * [`dispatch_linear`] — the table that routes the *dynamic* [`Linear`]
//!   layer onto monomorphized typed calls when its widths match one of
//!   the paper zoo's recurring dense shapes (hidden-to-hidden and head
//!   layers, whose widths are architecture constants). Resolution-derived
//!   widths (a flattened `C·H·W` input) stay on the dynamic entry.
//!
//! Everything here is bit-identical to the dynamic path by construction —
//! same kernels, same `(m, k, n)`, same order — pinned end to end by the
//! typed-vs-dynamic scenario equivalence suite, which flips
//! [`fedzkt_tensor::typed::set_enabled`] around whole runs.

use crate::layers::Linear;
use crate::module::Module;
use fedzkt_autograd::Var;
use fedzkt_tensor::typed;
use fedzkt_tensor::Prng;

/// A rank-2 activation `[batch, D]` whose feature width is part of the
/// type. The thin token that makes mis-chained [`TypedLinear`] layers a
/// compile error: `TypedLinear<A, B>` maps `Feat<A> -> Feat<B>`.
#[derive(Clone)]
pub struct Feat<const D: usize> {
    var: Var,
}

impl<const D: usize> Feat<D> {
    /// Tag `var` with its feature width.
    ///
    /// # Panics
    /// If `var` is not `[batch, D]` — the one boundary check; everything
    /// downstream relies on the tag.
    pub fn new(var: Var) -> Self {
        let s = var.shape();
        assert!(
            s.len() == 2 && s[1] == D,
            "Feat<{D}>: activation shape {s:?}, expected [batch, {D}]"
        );
        Feat { var }
    }

    /// The underlying autograd node.
    pub fn var(&self) -> &Var {
        &self.var
    }

    /// Unwrap back into the dynamic world.
    pub fn into_var(self) -> Var {
        self.var
    }

    /// Width-preserving ReLU.
    pub fn relu(&self) -> Self {
        Feat { var: self.var.relu() }
    }

    /// Width-preserving leaky ReLU.
    pub fn leaky_relu(&self, slope: f32) -> Self {
        Feat { var: self.var.leaky_relu(slope) }
    }
}

/// [`Linear`] with const-generic feature widths: `Feat<IN> -> Feat<OUT>`.
///
/// Wraps a plain [`Linear`] (identical parameter shapes, identical RNG
/// consumption at construction, interchangeable state dicts) and forwards
/// through [`Var::linear_typed`]. As a [`Module`] it still accepts a
/// dynamic `Var`, checking the width once at the boundary.
pub struct TypedLinear<const IN: usize, const OUT: usize> {
    inner: Linear,
}

impl<const IN: usize, const OUT: usize> TypedLinear<IN, OUT> {
    /// Create the layer (Glorot-uniform weights, zero bias) — consumes the
    /// RNG exactly like `Linear::new(IN, OUT, bias, rng)`, so typed and
    /// dynamic builders stay weight-identical under the same seed.
    pub fn new(bias: bool, rng: &mut Prng) -> Self {
        TypedLinear { inner: Linear::new(IN, OUT, bias, rng) }
    }

    /// Adopt an existing dynamic layer (e.g. one loaded from a state
    /// dict).
    ///
    /// # Panics
    /// If `inner` is not an `IN -> OUT` layer.
    pub fn from_linear(inner: Linear) -> Self {
        assert!(
            inner.in_features() == IN && inner.out_features() == OUT,
            "TypedLinear<{IN}, {OUT}>: wrapped layer is {} -> {}",
            inner.in_features(),
            inner.out_features()
        );
        TypedLinear { inner }
    }

    /// The wrapped dynamic layer.
    pub fn as_linear(&self) -> &Linear {
        &self.inner
    }

    /// Width-checked forward: the only shapes involved are in the types.
    pub fn forward_typed(&self, x: &Feat<IN>) -> Feat<OUT> {
        Feat { var: x.var().linear_typed::<IN, OUT>(self.inner.weight(), self.inner.bias_param()) }
    }
}

impl<const IN: usize, const OUT: usize> Module for TypedLinear<IN, OUT> {
    fn forward(&self, x: &Var) -> Var {
        self.forward_typed(&Feat::new(x.clone())).into_var()
    }

    fn params(&self) -> Vec<Var> {
        self.inner.params()
    }
}

/// Route a dynamic linear forward onto a monomorphized typed call when
/// `(in, out)` matches one of the zoo's recurring dense shapes and the
/// typed paths are enabled; `None` falls back to the dynamic entry.
///
/// The table covers the architecture-constant widths of the checked-in
/// zoo: MLP hidden stacks (`hidden` 64/16/8 with the `hidden/2`
/// follow-up), LeNet fc widths at scales 1.0 and 0.5, the FedGKT device
/// head and server head (full-size and miniaturized), and class counts 4
/// and 10. Growing the zoo does not *require* extending it — unlisted
/// widths just keep the dynamic path — but hot recurring shapes belong
/// here.
pub(crate) fn dispatch_linear(x: &Var, weight: &Var, bias: Option<&Var>) -> Option<Var> {
    if !typed::enabled() {
        return None;
    }
    let ws = weight.shape();
    let xs = x.shape();
    // Only a plain rank-2 activation whose width agrees with the weight
    // qualifies; anything else keeps the dynamic entry (and its richer
    // shape diagnostics).
    if ws.len() != 2 || xs.len() != 2 || xs[1] != ws[1] {
        return None;
    }
    macro_rules! table {
        ($(($i:literal, $o:literal)),+ $(,)?) => {
            match (ws[1], ws[0]) {
                $(($i, $o) => Some(x.linear_typed::<$i, $o>(weight, bias)),)+
                _ => None,
            }
        };
    }
    table!(
        // MLP hidden/head widths: hidden ∈ {64, 16, 8}, hidden/2 chains,
        // classes ∈ {4, 10}.
        (64, 64),
        (64, 32),
        (32, 16),
        (16, 8),
        (8, 4),
        (64, 10),
        (64, 4),
        (32, 10),
        (32, 4),
        (16, 10),
        (16, 4),
        (8, 10),
        (4, 10),
        (4, 4),
        // LeNet fc stacks: scale 1.0 (120 -> 84) and 0.5 (60 -> 42).
        (120, 84),
        (84, 10),
        (84, 4),
        (60, 42),
        (42, 10),
        (42, 4),
        // FedGKT server head (feature_dim -> server_hidden -> classes),
        // full-size (32 -> 64) and miniaturized (8 -> 16).
        (32, 64),
        (8, 16),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedzkt_tensor::{seeded_rng, Tensor};

    fn bits(v: &Var) -> Vec<u32> {
        v.value().data().iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn typed_linear_weight_identical_to_dynamic_under_same_seed() {
        let t = TypedLinear::<5, 3>::new(true, &mut seeded_rng(4));
        let d = Linear::new(5, 3, true, &mut seeded_rng(4));
        assert_eq!(t.as_linear().weight().value().data(), d.weight().value().data());
    }

    #[test]
    fn typed_linear_forward_bit_identical_to_dynamic() {
        let mut rng = seeded_rng(5);
        let t = TypedLinear::<6, 2>::new(true, &mut rng);
        let x = Var::constant(Tensor::randn(&[7, 6], &mut rng));
        let typed_y = t.forward_typed(&Feat::new(x.clone())).into_var();
        let dyn_y = x.linear(t.as_linear().weight(), t.as_linear().bias_param());
        assert_eq!(bits(&typed_y), bits(&dyn_y));
    }

    /// The zoo dispatch table must be a pure routing decision: a width in
    /// the table and the same width with the toggle off give bit-identical
    /// outputs.
    #[test]
    fn dispatch_table_is_bit_transparent() {
        let mut rng = seeded_rng(6);
        let l = Linear::new(64, 32, true, &mut rng); // in the table
        let x = Var::constant(Tensor::randn(&[3, 64], &mut rng));
        assert!(typed::enabled());
        let routed = l.forward(&x);
        typed::set_enabled(false);
        let dynamic = l.forward(&x);
        typed::set_enabled(true);
        assert_eq!(bits(&routed), bits(&dynamic));
        // And a width outside the table still works (dynamic fallback).
        let odd = Linear::new(7, 5, true, &mut rng);
        let y = odd.forward(&Var::constant(Tensor::zeros(&[2, 7])));
        assert_eq!(y.shape(), vec![2, 5]);
    }

    #[test]
    #[should_panic(expected = "Feat<4>")]
    fn feat_rejects_wrong_width() {
        let _ = Feat::<4>::new(Var::constant(Tensor::zeros(&[2, 5])));
    }

    #[test]
    fn from_linear_round_trips_and_checks() {
        let mut rng = seeded_rng(7);
        let t = TypedLinear::<3, 2>::from_linear(Linear::new(3, 2, false, &mut rng));
        assert_eq!(t.params().len(), 1);
        let y = t.forward(&Var::constant(Tensor::zeros(&[4, 3])));
        assert_eq!(y.shape(), vec![4, 2]);
    }

    #[test]
    #[should_panic(expected = "TypedLinear<3, 2>")]
    fn from_linear_rejects_mismatched_widths() {
        let mut rng = seeded_rng(8);
        let _ = TypedLinear::<3, 2>::from_linear(Linear::new(2, 3, false, &mut rng));
    }
}
