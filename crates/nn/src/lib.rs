//! # fedzkt-nn
//!
//! Neural-network building blocks over `fedzkt-autograd`: the [`Module`]
//! trait, the layer set used by the FedZKT model zoo (dense, convolution
//! with groups, batch-norm, pooling, upsampling, activations, dropout),
//! optimizers (SGD with momentum/weight decay, Adam), the paper's
//! multi-step learning-rate schedule, and serializable state dicts for
//! moving model parameters between the simulated server and devices.
//!
//! A [`StateDict`] is deliberately just an ordered **named tensor
//! bundle** — shaped tensors split into params and buffers, with no
//! model semantics attached. That is what lets the wire layer
//! (`fedzkt_fl::PayloadCodec`) and the binary checkpoint format carry
//! non-model payloads unchanged: FedGKT ships per-sample
//! features/logits/labels through the same encode/decode path a FedAvg
//! weight update takes.
//!
//! ## Example
//!
//! ```
//! use fedzkt_nn::{Linear, Module, Optimizer, Sequential, Activation, Sgd, SgdConfig};
//! use fedzkt_autograd::{loss::mse, Var};
//! use fedzkt_tensor::{seeded_rng, Tensor};
//!
//! let mut rng = seeded_rng(0);
//! let model = Sequential::new(vec![
//!     Box::new(Linear::new(2, 8, true, &mut rng)),
//!     Box::new(Activation::Relu),
//!     Box::new(Linear::new(8, 1, true, &mut rng)),
//! ]);
//! let opt = Sgd::new(model.params(), SgdConfig { lr: 0.1, ..Default::default() });
//! let x = Var::constant(Tensor::from_vec(vec![0.0, 1.0, 1.0, 0.0], &[2, 2]).unwrap());
//! let y = Var::constant(Tensor::from_vec(vec![1.0, -1.0], &[2, 1]).unwrap());
//! for _ in 0..10 {
//!     opt.zero_grad();
//!     let loss = mse(&model.forward(&x), &y);
//!     loss.backward();
//!     opt.step();
//! }
//! ```

#![warn(missing_docs)]

mod checkpoint;
mod error;
mod layers;
mod module;
mod optim;
pub mod typed;

pub use checkpoint::{decode_state_dict, encode_state_dict, load_state_dict_file, save_state_dict};
pub use error::NnError;
pub use layers::{
    Activation, AvgPool2d, BatchNorm2d, Conv2d, Conv2dConfig, Dropout, Flatten, GlobalAvgPool,
    Linear, MaxPool2d, UpsampleNearest2d,
};
pub use module::{
    load_state_dict, param_bytes, param_count, state_bytes, state_dict, Buffer, Module,
    Sequential, StateDict,
};
pub use optim::{Adam, AdamConfig, MultiStepLr, Optimizer, Sgd, SgdConfig};
