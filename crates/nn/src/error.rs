use std::fmt;

/// Errors from state-dict loading and layer configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NnError {
    /// A state dict does not match the target module's parameter layout.
    StateDictMismatch {
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// A layer was configured with impossible dimensions.
    InvalidConfig(String),
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::StateDictMismatch { detail } => {
                write!(f, "state dict mismatch: {detail}")
            }
            NnError::InvalidConfig(msg) => write!(f, "invalid layer config: {msg}"),
        }
    }
}

impl std::error::Error for NnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_detail() {
        let e = NnError::StateDictMismatch { detail: "param 3 shape".into() };
        assert!(e.to_string().contains("param 3 shape"));
    }
}
